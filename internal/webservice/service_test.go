package webservice

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/faults"
	"repro/internal/gridftp"
	"repro/internal/myproxy"
	"repro/internal/resilience"
	"repro/internal/rls"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/tcat"
	"repro/internal/vdl"
	"repro/internal/votable"
	"repro/internal/wcs"
)

// harness wires a full Grid: archive HTTP server, RLS, TC, GridFTP, pools.
type harness struct {
	archive *services.Archive
	archSrv *httptest.Server
	svc     *Service
	r       *rls.RLS
	ftp     *gridftp.Service
	cluster *skysim.Cluster
}

func newHarness(t testing.TB, nGalaxies int, cfgMut func(*Config)) *harness {
	t.Helper()
	cl := skysim.Generate(skysim.Spec{
		Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.023,
		NumGalaxies: nGalaxies, Seed: 11,
	})
	arch := services.NewArchive("mast", cl)
	srv := httptest.NewServer(arch.Handler())
	t.Cleanup(srv.Close)

	r := rls.New()
	ftp := gridftp.NewService(gridftp.Network{})
	tc := tcat.New()
	for _, site := range []string{"usc", "wisc", "fnal"} {
		_ = tc.Add(tcat.Entry{Transformation: "galMorph", Site: site, Path: "/nvo/bin/galMorph"})
		_ = tc.Add(tcat.Entry{Transformation: "concatVOT", Site: site, Path: "/nvo/bin/concatVOT"})
	}
	cfg := Config{
		RLS: r, TC: tc, GridFTP: ftp,
		Pools: []condor.Pool{
			{Name: "usc", Slots: 8}, {Name: "wisc", Slots: 16}, {Name: "fnal", Slots: 8},
		},
		CacheSite:  "isi",
		HTTPClient: srv.Client(),
		Seed:       5,
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{archive: arch, archSrv: srv, svc: svc, r: r, ftp: ftp, cluster: cl}
}

// inputTable builds the catalog VOTable the portal would send: id, ra, dec,
// z and absolute acref URLs.
func (h *harness) inputTable(t testing.TB) *votable.Table {
	t.Helper()
	tab := h.archive.SIAQueryCutouts(h.cluster.Center, 2)
	if tab.NumRows() == 0 {
		t.Fatal("no galaxies from cutout service")
	}
	// Absolutize acrefs and attach redshifts.
	zCol := votable.Field{Name: "z", Datatype: votable.TypeDouble}
	tab.AddColumn(zCol, func(i int) string {
		g, _ := h.archive.Galaxy(tab.Cell(i, "id"))
		return votable.FormatFloat(g.Redshift)
	})
	// Rename title column to id for the service contract.
	for i := range tab.Fields {
		if tab.Fields[i].Name == "title" {
			tab.Fields[i].Name = "id"
		}
	}
	for i := 0; i < tab.NumRows(); i++ {
		if err := tab.SetCell(i, "acref", h.archSrv.URL+tab.Cell(i, "acref")); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must fail")
	}
}

func TestValidateInput(t *testing.T) {
	h := newHarness(t, 5, nil)
	bad := votable.NewTable("x", votable.Field{Name: "nope", Datatype: votable.TypeChar})
	if _, _, err := h.svc.Compute(bad, "C"); err == nil {
		t.Error("table without id/acref must fail")
	}
	empty := votable.NewTable("x",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "acref", Datatype: votable.TypeChar})
	if _, _, err := h.svc.Compute(empty, "C"); err == nil {
		t.Error("empty table must fail")
	}
}

func TestComputeEndToEnd(t *testing.T) {
	h := newHarness(t, 20, nil)
	tab := h.inputTable(t)

	lfn, stats, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if lfn != "COMA.vot" {
		t.Errorf("output lfn = %q", lfn)
	}
	if stats.Galaxies != tab.NumRows() {
		t.Errorf("galaxies = %d", stats.Galaxies)
	}
	if stats.ImagesFetched != tab.NumRows() || stats.ImagesCached != 0 {
		t.Errorf("fetch/cache = %d/%d", stats.ImagesFetched, stats.ImagesCached)
	}
	if stats.ComputeJobs != tab.NumRows()+1 {
		t.Errorf("compute jobs = %d, want %d", stats.ComputeJobs, tab.NumRows()+1)
	}
	if stats.Makespan <= 0 {
		t.Error("makespan must be positive")
	}
	if stats.FilesStaged == 0 {
		t.Error("staging must have happened")
	}
	if !h.r.Exists("COMA.vot") {
		t.Error("output not registered in RLS")
	}

	// The result table has one row per galaxy with the three parameters.
	res, err := h.svc.ResultTable(lfn)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != tab.NumRows() {
		t.Fatalf("result rows = %d", res.NumRows())
	}
	validCount := 0
	for i := 0; i < res.NumRows(); i++ {
		if v, ok := res.Bool(i, "valid"); ok && v {
			validCount++
			if _, ok := res.Float(i, "asymmetry"); !ok {
				t.Errorf("row %d: no asymmetry", i)
			}
			if _, ok := res.Float(i, "concentration"); !ok {
				t.Errorf("row %d: no concentration", i)
			}
			if _, ok := res.Float(i, "surface_brightness"); !ok {
				t.Errorf("row %d: no surface brightness", i)
			}
		}
	}
	if validCount < res.NumRows()*3/4 {
		t.Errorf("only %d/%d rows valid", validCount, res.NumRows())
	}
}

func TestComputeSecondRequestUsesCache(t *testing.T) {
	h := newHarness(t, 10, nil)
	tab := h.inputTable(t)

	if _, _, err := h.svc.Compute(tab, "COMA"); err != nil {
		t.Fatal(err)
	}
	// Second identical request: output exists in RLS -> no work at all.
	_, stats2, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.ReusedOutput {
		t.Error("second request must reuse the registered output")
	}
	if stats2.ComputeJobs != 0 || stats2.ImagesFetched != 0 {
		t.Errorf("second request did work: %+v", stats2)
	}

	// A different cluster name over the same galaxies: images are cached
	// (no SIA fetches), compute jobs are pruned because the per-galaxy
	// .txt products are registered.
	_, stats3, err := h.svc.Compute(tab, "COMA2")
	if err != nil {
		t.Fatal(err)
	}
	if stats3.ImagesFetched != 0 || stats3.ImagesCached != 10 {
		t.Errorf("images fetch/cache = %d/%d, want 0/10", stats3.ImagesFetched, stats3.ImagesCached)
	}
	if stats3.PrunedJobs != 10 {
		t.Errorf("pruned = %d, want 10 galMorph jobs", stats3.PrunedJobs)
	}
	if stats3.ComputeJobs != 1 { // only the new concat
		t.Errorf("compute jobs = %d, want 1", stats3.ComputeJobs)
	}
}

func TestValidityFlagFaultTolerance(t *testing.T) {
	// Corrupt one galaxy's cached image: the workflow must still complete,
	// with that galaxy flagged invalid (§4.3.1 item 4).
	h := newHarness(t, 8, nil)
	tab := h.inputTable(t)
	// Pre-cache a corrupt image for the first galaxy.
	id := tab.Cell(0, "id")
	store := h.ftp.Store("isi")
	if err := store.Put(id+".fit", []byte("this is not FITS data at all, but long enough")); err != nil {
		t.Fatal(err)
	}
	if err := h.r.Register(id+".fit", rls.PFN{Site: "isi", URL: gridftp.URL("isi", id+".fit")}); err != nil {
		t.Fatal(err)
	}

	lfn, stats, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if stats.InvalidRows != 1 {
		t.Errorf("invalid rows = %d, want 1", stats.InvalidRows)
	}
	res, err := h.svc.ResultTable(lfn)
	if err != nil {
		t.Fatal(err)
	}
	sawInvalid := false
	for i := 0; i < res.NumRows(); i++ {
		if res.Cell(i, "id") == id {
			if v, _ := res.Bool(i, "valid"); v {
				t.Error("corrupt galaxy marked valid")
			}
			sawInvalid = true
		}
	}
	if !sawInvalid {
		t.Error("corrupt galaxy missing from results")
	}
}

func TestStrictFaultsAblation(t *testing.T) {
	// The rejected design: a bad image fails its job, exhausts retries and
	// takes down the workflow.
	h := newHarness(t, 6, func(c *Config) { c.StrictFaults = true; c.MaxRetries = 1 })
	tab := h.inputTable(t)
	id := tab.Cell(0, "id")
	_ = h.ftp.Store("isi").Put(id+".fit", []byte("garbage garbage garbage garbage"))
	_ = h.r.Register(id+".fit", rls.PFN{Site: "isi", URL: gridftp.URL("isi", id+".fit")})

	if _, _, err := h.svc.Compute(tab, "COMA"); err == nil {
		t.Error("strict-faults run must fail on the corrupt image")
	}
}

func TestInjectedTransientFailuresRetried(t *testing.T) {
	h := newHarness(t, 12, func(c *Config) { c.FailureRate = 0.2; c.MaxRetries = 20 })
	tab := h.inputTable(t)
	lfn, _, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.svc.ResultTable(lfn)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 12 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	h := newHarness(t, 8, nil)
	tab := h.inputTable(t)

	id, err := h.svc.Submit(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "req-") {
		t.Errorf("request id = %q", id)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := h.svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateCompleted {
			if st.ResultLFN != "COMA.vot" {
				t.Errorf("result lfn = %q", st.ResultLFN)
			}
			break
		}
		if st.State == StateFailed {
			t.Fatalf("request failed: %s", st.Message)
		}
		if time.Now().After(deadline) {
			t.Fatal("request did not complete in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := h.svc.Status("req-999999"); err == nil {
		t.Error("unknown request must fail")
	}
}

func TestHTTPProtocol(t *testing.T) {
	h := newHarness(t, 6, nil)
	tab := h.inputTable(t)
	wsSrv := httptest.NewServer(h.svc.Handler())
	defer wsSrv.Close()

	var body bytes.Buffer
	if err := votable.WriteTable(&body, tab); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(wsSrv.URL+"/galmorph?cluster=COMA", "text/xml", &body)
	if err != nil {
		t.Fatal(err)
	}
	statusPath := readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, statusPath)
	}
	if !strings.HasPrefix(statusPath, "/status?id=") {
		t.Fatalf("status path = %q", statusPath)
	}

	// Poll until completed, as the portal does.
	var resultURL string
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(wsSrv.URL + statusPath)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State     State
			Message   string
			ResultURL string
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == StateCompleted {
			resultURL = st.ResultURL
			break
		}
		if st.State == StateFailed {
			t.Fatalf("failed: %s", st.Message)
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err = http.Get(wsSrv.URL + resultURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res, err := votable.ReadTable(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 6 {
		t.Errorf("result rows = %d", res.NumRows())
	}
}

func TestHTTPErrors(t *testing.T) {
	h := newHarness(t, 3, nil)
	wsSrv := httptest.NewServer(h.svc.Handler())
	defer wsSrv.Close()

	resp, _ := http.Get(wsSrv.URL + "/galmorph?cluster=X")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /galmorph = %d", resp.StatusCode)
	}
	resp, _ = http.Post(wsSrv.URL+"/galmorph", "text/xml", strings.NewReader("x"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing cluster = %d", resp.StatusCode)
	}
	resp, _ = http.Post(wsSrv.URL+"/galmorph?cluster=X", "text/xml", strings.NewReader("not xml"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body = %d", resp.StatusCode)
	}
	resp, _ = http.Get(wsSrv.URL + "/status?id=nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown status = %d", resp.StatusCode)
	}
	resp, _ = http.Get(wsSrv.URL + "/result?lfn=ghost.vot")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown result = %d", resp.StatusCode)
	}
	resp, _ = http.Get(wsSrv.URL + "/result")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing lfn = %d", resp.StatusCode)
	}
}

func TestResultCodec(t *testing.T) {
	r := GalMorphResult{
		ID: "COMA-000001", SurfaceBrightness: 21.5, Concentration: 3.2,
		Asymmetry: 0.12, Valid: true,
	}
	got, err := decodeResult(encodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip: %+v != %+v", got, r)
	}
	bad := GalMorphResult{ID: "X", Valid: false, Reason: "no signal\nmultiline"}
	got, err = decodeResult(encodeResult(bad))
	if err != nil {
		t.Fatal(err)
	}
	if got.Valid || got.Reason == "" {
		t.Errorf("invalid round trip: %+v", got)
	}
	if _, err := decodeResult([]byte("garbage-without-space")); err == nil {
		t.Error("garbage must fail")
	}
	if _, err := decodeResult([]byte("valid true\n")); err == nil {
		t.Error("missing id must fail")
	}
}

func TestBuildVDLParses(t *testing.T) {
	tab := votable.NewTable("in",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "acref", Datatype: votable.TypeChar},
		votable.Field{Name: "z", Datatype: votable.TypeDouble},
	)
	_ = tab.AppendRow("G1", "http://x/1", "0.02")
	_ = tab.AppendRow("G2", "http://x/2", "")

	text, err := buildVDL(tab, "TEST")
	if err != nil {
		t.Fatal(err)
	}
	cat, err := vdl.Parse(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if len(cat.Derivations()) != 3 {
		t.Errorf("derivations = %v", cat.Derivations())
	}
	dv, _ := cat.Derivation("m-G2")
	if dv.Bindings["redshift"].Value != "0" {
		t.Errorf("empty z must default to 0: %+v", dv.Bindings["redshift"])
	}
	cfg := morphConfigFromDV(dv)
	if cfg.Cosmology.H0 != 100 || cfg.ZeroPoint != 27.8 {
		t.Errorf("config = %+v", cfg)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func BenchmarkWebServiceCachedRequest(b *testing.B) {
	h := newHarness(b, 20, nil)
	tab := h.inputTable(b)
	if _, _, err := h.svc.Compute(tab, "COMA"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := h.svc.Compute(tab, "COMA")
		if err != nil || !stats.ReusedOutput {
			b.Fatalf("stats=%+v err=%v", stats, err)
		}
	}
}

func BenchmarkWebServiceColdRequest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := newHarness(b, 10, nil)
		tab := h.inputTable(b)
		b.StartTimer()
		if _, _, err := h.svc.Compute(tab, fmt.Sprintf("COMA%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProgressReporting(t *testing.T) {
	h := newHarness(t, 10, nil)
	tab := h.inputTable(t)
	id, err := h.svc.Submit(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var final Status
	for {
		st, err := h.svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRunning {
			final = st
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final.State != StateCompleted {
		t.Fatalf("final = %+v", final)
	}
	if final.JobsTotal == 0 || final.JobsDone != final.JobsTotal {
		t.Errorf("progress = %d/%d, want complete and non-zero", final.JobsDone, final.JobsTotal)
	}
	// Total covers compute + transfer + register nodes.
	if final.JobsTotal < final.Stats.ComputeJobs {
		t.Errorf("total %d < compute jobs %d", final.JobsTotal, final.Stats.ComputeJobs)
	}
}

func TestMyProxyGatedCompute(t *testing.T) {
	repo := myproxy.New()
	if err := repo.Delegate("nvoportal", "pw", "/CN=NVO Portal", time.Hour, time.Hour); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, 5, func(c *Config) {
		c.Proxy = func() (myproxy.Proxy, error) {
			return repo.Retrieve("nvoportal", "pw", 30*time.Minute)
		}
	})
	tab := h.inputTable(t)
	if _, _, err := h.svc.Compute(tab, "COMA"); err != nil {
		t.Fatalf("valid proxy must allow compute: %v", err)
	}

	// Destroyed delegation: the service must refuse.
	if err := repo.Destroy("nvoportal", "pw"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.svc.Compute(tab, "COMA2"); err == nil {
		t.Error("missing credential must refuse the request")
	}

	// A proxy that is already expired must also refuse.
	h2 := newHarness(t, 5, func(c *Config) {
		c.Proxy = func() (myproxy.Proxy, error) {
			return myproxy.Proxy{Subject: "/CN=X", Token: "t",
				Expires: time.Now().Add(-time.Minute)}, nil
		}
	})
	tab2 := h2.inputTable(t)
	if _, _, err := h2.svc.Compute(tab2, "COMA"); err == nil {
		t.Error("expired proxy must refuse the request")
	}
}

func TestRescueRoundsRecoverWorkflow(t *testing.T) {
	// With a moderate failure rate and a tiny per-round retry budget, the
	// first round can fail permanently; rescue rounds recover it.
	h := newHarness(t, 15, func(c *Config) {
		c.FailureRate = 0.35
		c.MaxRetries = 1
		c.RescueRounds = 6
	})
	tab := h.inputTable(t)
	lfn, _, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatalf("rescue rounds should carry the workflow through: %v", err)
	}
	res, err := h.svc.ResultTable(lfn)
	if err != nil || res.NumRows() != 15 {
		t.Fatalf("result = %v rows, %v", res, err)
	}
}

func TestBatchFetchEquivalence(t *testing.T) {
	// Batch fetching must produce the same cached images and the same
	// science results as per-galaxy fetching.
	hSingle := newHarness(t, 10, nil)
	hBatch := newHarness(t, 10, func(c *Config) { c.BatchFetch = true })

	tabS := hSingle.inputTable(t)
	tabB := hBatch.inputTable(t)

	lfnS, statsS, err := hSingle.svc.Compute(tabS, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	lfnB, statsB, err := hBatch.svc.Compute(tabB, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if statsB.ImagesFetched != 10 || statsS.ImagesFetched != 10 {
		t.Errorf("fetch counts: single %d batch %d", statsS.ImagesFetched, statsB.ImagesFetched)
	}
	// Cached bytes identical per galaxy.
	for i := 0; i < 10; i++ {
		id := tabS.Cell(i, "id")
		a, err := hSingle.ftp.Store("isi").Get(id + ".fit")
		if err != nil {
			t.Fatal(err)
		}
		b, err := hBatch.ftp.Store("isi").Get(id + ".fit")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: cached bytes differ between single and batch", id)
		}
	}
	// Science results identical.
	resS, err := hSingle.svc.ResultTable(lfnS)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := hBatch.svc.ResultTable(lfnB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resS.Rows {
		for j := range resS.Rows[i] {
			if resS.Rows[i][j] != resB.Rows[i][j] {
				t.Errorf("result cell (%d,%d) differs: %q vs %q",
					i, j, resS.Rows[i][j], resB.Rows[i][j])
			}
		}
	}
}

func TestBatchFetchFallsBackOnOddAcrefs(t *testing.T) {
	// acrefs that do not match the cutout pattern are fetched singly.
	h := newHarness(t, 4, func(c *Config) { c.BatchFetch = true })
	tab := h.inputTable(t)
	// Rewrite one acref to the equivalent non-standard form.
	odd := strings.Replace(tab.Cell(0, "acref"), "/cutout?id=", "/cutout?extra=1&id=", 1)
	if err := tab.SetCell(0, "acref", odd); err != nil {
		t.Fatal(err)
	}
	_, stats, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if stats.ImagesFetched != 4 {
		t.Errorf("fetched = %d, want 4", stats.ImagesFetched)
	}
}

func TestReplicaFailoverUnderSiteDownCache(t *testing.T) {
	breakers := resilience.NewRegistry(resilience.BreakerConfig{
		FailureThreshold: 2, CooldownRejects: 1 << 20,
	})
	mirrored := func(cfg *Config) {
		cfg.MirrorSite = "mirror"
		cfg.Breakers = breakers
	}
	h := newHarness(t, 10, mirrored)
	// Every transfer sourced at the cache site fails: the site is down for
	// the whole run. Progress requires failing over to the mirror replicas.
	h.ftp.SetInjector(faults.New(7,
		faults.Rule{Name: gridftp.OpTransfer, Site: "isi", Kind: faults.KindSiteDown},
	))
	out, stats, err := h.svc.Compute(h.inputTable(t), "COMA")
	if err != nil {
		t.Fatalf("compute under isi-down: %v", err)
	}
	if stats.Failovers == 0 {
		t.Error("expected at least one replica failover")
	}
	if breakers.TotalOpens() == 0 {
		t.Error("expected the isi/transfer circuit to open")
	}
	faulted, err := h.ftp.Store("isi").Get(out)
	if err != nil {
		t.Fatal(err)
	}

	// A fault-free run with the identical configuration produces the same
	// output bytes: failover is invisible in the science result.
	h2 := newHarness(t, 10, func(cfg *Config) {
		cfg.MirrorSite = "mirror"
		cfg.Breakers = resilience.NewRegistry(resilience.BreakerConfig{
			FailureThreshold: 2, CooldownRejects: 1 << 20,
		})
	})
	out2, stats2, err := h2.svc.Compute(h2.inputTable(t), "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Failovers != 0 {
		t.Errorf("fault-free run performed %d failovers", stats2.Failovers)
	}
	clean, err := h2.ftp.Store("isi").Get(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(faulted, clean) {
		t.Error("failover run's output differs from the fault-free run")
	}
}

func TestRetryPolicyDrivesDAGManRetries(t *testing.T) {
	h := newHarness(t, 8, func(cfg *Config) {
		cfg.FailureRate = 0.3
		cfg.MaxRetries = 0 // the policy, not the count, must drive retries
		cfg.RetryPolicy = &resilience.Policy{MaxAttempts: 6}
	})
	_, stats, err := h.svc.Compute(h.inputTable(t), "COMA")
	if err != nil {
		t.Fatalf("compute with retry policy: %v", err)
	}
	if stats.Retries == 0 {
		t.Error("expected injected transients to be retried under the policy")
	}
}
