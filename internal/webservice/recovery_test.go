package webservice

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dagman"
	"repro/internal/faults"
	"repro/internal/gridftp"
	"repro/internal/journal"
	"repro/internal/myproxy"
	"repro/internal/votable"
)

// outputBytes reads the raw result VOTable from the cache store — the bytes
// whose identity the recovery design guarantees.
func (h *harness) outputBytes(t *testing.T, lfn string) []byte {
	t.Helper()
	data, err := h.ftp.Store("isi").Get(lfn)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// journaledRun computes the cluster with journaling on and returns the
// output bytes plus the replayed journal.
func journaledRun(t *testing.T, nGalaxies int, workers int) ([]byte, []journal.Record, *harness) {
	t.Helper()
	dir := t.TempDir()
	h := newHarness(t, nGalaxies, func(c *Config) {
		c.JournalDir = dir
		c.Workers = workers
	})
	tab := h.inputTable(t)
	if _, _, err := h.svc.Compute(tab, "COMA"); err != nil {
		t.Fatal(err)
	}
	recs, truncated, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("uninterrupted run left a torn journal")
	}
	return h.outputBytes(t, "COMA.vot"), recs, h
}

func TestJournalBracketsCleanRun(t *testing.T) {
	_, recs, h := journaledRun(t, 4, 1)
	if len(recs) < 4 {
		t.Fatalf("journal too short: %d records", len(recs))
	}
	if recs[0].Kind != journal.KindBegin {
		t.Errorf("first record = %s, want begin", recs[0].Kind)
	}
	if !strings.Contains(recs[0].Detail, "cluster=COMA") {
		t.Errorf("begin detail = %q", recs[0].Detail)
	}
	last := recs[len(recs)-1]
	if last.Kind != journal.KindEnd || !strings.Contains(last.Detail, "COMA.vot") {
		t.Errorf("last record = %+v, want end with output", last)
	}
	// The DAG and VDL artifacts exist and reload to the planned graph.
	g, done, err := dagman.ReadDAGFile(filepath.Join(h.svc.cfg.JournalDir, "COMA.dag"))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Errorf("plan-time DAG has %d done markers", len(done))
	}
	submitted := 0
	for _, r := range recs {
		if r.Kind == journal.KindSubmitted {
			submitted++
		}
	}
	if submitted != g.Len() {
		t.Errorf("journal submitted %d nodes, DAG has %d", submitted, g.Len())
	}
}

// TestKillAndResumeByteIdentity is the tentpole acceptance: kill the service
// at EVERY journal-event boundary, restart, resume — the resumed run must
// re-execute only unfinished nodes and the output VOTable must be
// byte-identical to the uninterrupted run's.
func TestKillAndResumeByteIdentity(t *testing.T) {
	const nGalaxies = 4
	want, baseRecs, _ := journaledRun(t, nGalaxies, 1)
	events := len(baseRecs) - 2 // minus begin and end markers
	if events < 10 {
		t.Fatalf("workflow too small for a sweep: %d events", events)
	}

	// A budget of `events` is never exhausted (the end marker bypasses the
	// crash sink), so the last genuine kill point is events-1.
	for k := 1; k < events; k++ {
		dir := t.TempDir()
		h := newHarness(t, nGalaxies, func(c *Config) {
			c.JournalDir = dir
			c.CrashAfterEvents = k
		})
		tab := h.inputTable(t)
		_, _, err := h.svc.Compute(tab, "COMA")
		if !errors.Is(err, journal.ErrCrash) {
			t.Fatalf("kill point %d: crash did not fire: %v", k, err)
		}
		if !errors.Is(err, dagman.ErrAborted) {
			t.Errorf("kill point %d: crash not surfaced as abort: %v", k, err)
		}

		// What the dead process left behind.
		recs, _, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
		if err != nil {
			t.Fatalf("kill point %d: replay: %v", k, err)
		}
		doneAtCrash := journal.CompletedNodes(recs)
		prefix := len(recs)

		// Restart and resume.
		svc2, err := h.svc.Reopen()
		if err != nil {
			t.Fatalf("kill point %d: reopen: %v", k, err)
		}
		out, stats, err := svc2.Resume("COMA")
		if err != nil {
			t.Fatalf("kill point %d: resume: %v", k, err)
		}
		if out != "COMA.vot" {
			t.Fatalf("kill point %d: resume output %q", k, out)
		}
		if stats.RestoredNodes != len(doneAtCrash) {
			t.Errorf("kill point %d: restored %d nodes, journal recorded %d done",
				k, stats.RestoredNodes, len(doneAtCrash))
		}
		if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
			t.Fatalf("kill point %d: resumed output differs from uninterrupted run", k)
		}

		// Only unfinished nodes were re-executed: no node the journal already
		// recorded as completed is submitted again after the crash point.
		after, _, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range after[prefix:] {
			if r.Kind == journal.KindSubmitted && doneAtCrash[r.Node] {
				t.Fatalf("kill point %d: completed node %s re-submitted on resume", k, r.Node)
			}
		}
		if _, ended := journal.Ended(after); !ended {
			t.Errorf("kill point %d: resumed journal lacks end marker", k)
		}
	}
}

// TestKillAndResumeAtWorkerWidth repeats kill-and-resume with concurrent leaf
// execution: the byte identity must hold at any worker width.
func TestKillAndResumeAtWorkerWidth(t *testing.T) {
	const nGalaxies = 5
	want, baseRecs, _ := journaledRun(t, nGalaxies, 4)
	events := len(baseRecs) - 2

	for _, k := range []int{1, events / 3, events / 2, events - 1} {
		if k < 1 {
			k = 1
		}
		dir := t.TempDir()
		h := newHarness(t, nGalaxies, func(c *Config) {
			c.JournalDir = dir
			c.CrashAfterEvents = k
			c.Workers = 4
		})
		tab := h.inputTable(t)
		if _, _, err := h.svc.Compute(tab, "COMA"); !errors.Is(err, journal.ErrCrash) {
			t.Fatalf("kill point %d: crash did not fire", k)
		}
		svc2, err := h.svc.Reopen()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := svc2.Resume("COMA"); err != nil {
			t.Fatalf("kill point %d: resume: %v", k, err)
		}
		if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
			t.Fatalf("kill point %d: output differs at worker width 4", k)
		}
	}
}

func TestResumeOfFinishedRunShortCircuits(t *testing.T) {
	want, _, h := journaledRun(t, 3, 1)
	svc2, err := h.svc.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	// Resume is idempotent: the journal's end marker plus the registered
	// output short-circuit re-execution entirely.
	for i := 0; i < 2; i++ {
		out, stats, err := svc2.Resume("COMA")
		if err != nil {
			t.Fatal(err)
		}
		if out != "COMA.vot" || !stats.ReusedOutput {
			t.Errorf("resume %d: out=%q reused=%t", i, out, stats.ReusedOutput)
		}
	}
	if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
		t.Error("short-circuited resume must not touch the output")
	}
}

func TestResumeErrors(t *testing.T) {
	h := newHarness(t, 3, nil)
	if _, _, err := h.svc.Resume("COMA"); err == nil {
		t.Error("resume without JournalDir must fail")
	}
	h2 := newHarness(t, 3, func(c *Config) { c.JournalDir = t.TempDir() })
	if _, _, err := h2.svc.Resume("NEVER-RAN"); err == nil {
		t.Error("resume of an unknown cluster must fail")
	}
}

// TestTransferCorruptionFailsOverToMirror corrupts a cached image at the
// primary site during its staging transfer: the replica must be quarantined,
// the content served from the mirror, the source healed — and the science
// output unchanged.
func TestTransferCorruptionFailsOverToMirror(t *testing.T) {
	// Baseline: identical configuration, no faults.
	h0 := newHarness(t, 4, func(c *Config) { c.MirrorSite = "mirror" })
	tab0 := h0.inputTable(t)
	if _, _, err := h0.svc.Compute(tab0, "COMA"); err != nil {
		t.Fatal(err)
	}
	want := h0.outputBytes(t, "COMA.vot")

	h := newHarness(t, 4, func(c *Config) { c.MirrorSite = "mirror" })
	h.ftp.SetInjector(faults.New(7, faults.Rule{
		Name: gridftp.OpTransfer, Site: "isi", Kind: faults.KindCorruption, MaxFaults: 2,
	}))
	tab := h.inputTable(t)
	_, stats, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatalf("corruption must not fail the workflow: %v", err)
	}
	if stats.ChecksumFailures == 0 || stats.Quarantined == 0 {
		t.Errorf("stats = %+v, want checksum failures and quarantines", stats)
	}
	if stats.Failovers == 0 {
		t.Errorf("recovery must have served the mirror replica: %+v", stats)
	}
	if h.r.QuarantinedCount() == 0 {
		t.Error("RLS retains no quarantined replica for audit")
	}
	if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
		t.Error("science output changed under corruption recovery")
	}
	t.Logf("mirror failover: checksumFailures=%d quarantined=%d failovers=%d rederived=%d",
		stats.ChecksumFailures, stats.Quarantined, stats.Failovers, stats.Rederived)
	// Every surviving registered replica verifies — the heal converged.
	for _, lfn := range h.r.LFNs() {
		for _, p := range h.r.Lookup(lfn) {
			site, path, err := gridftp.ParseURL(p.URL)
			if err != nil {
				continue
			}
			if err := h.ftp.Store(site).Verify(path); err != nil {
				t.Errorf("replica %s at %s still damaged after heal: %v", lfn, site, err)
			}
		}
	}
}

// TestCorruptIntermediateRederivedFromProvenance damages every registered
// replica of one per-galaxy result file, then re-runs the (reduced) workflow:
// the file must be re-derived from its galaxy image via the Chimera
// provenance, and the output VOTable must be byte-identical.
func TestCorruptIntermediateRederivedFromProvenance(t *testing.T) {
	h := newHarness(t, 4, func(c *Config) { c.JournalDir = t.TempDir() })
	tab := h.inputTable(t)
	if _, _, err := h.svc.Compute(tab, "COMA"); err != nil {
		t.Fatal(err)
	}
	want := h.outputBytes(t, "COMA.vot")

	// Damage every registered replica of the first galaxy's result file.
	victim := tab.Cell(0, "id") + ".txt"
	pfns := h.r.Lookup(victim)
	if len(pfns) == 0 {
		t.Fatalf("%s not registered after the run", victim)
	}
	for _, p := range pfns {
		site, path, err := gridftp.ParseURL(p.URL)
		if err != nil {
			t.Fatal(err)
		}
		if !h.ftp.Store(site).Corrupt(path) {
			t.Fatalf("could not corrupt %s at %s", path, site)
		}
	}
	// Force a re-run: pull the output table from circulation.
	for _, p := range h.r.Lookup("COMA.vot") {
		if err := h.r.Unregister("COMA.vot", p); err != nil {
			t.Fatal(err)
		}
	}

	_, stats, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatalf("re-run with corrupted intermediate: %v", err)
	}
	if stats.PrunedJobs == 0 {
		t.Errorf("expected Pegasus to prune completed derivations: %+v", stats)
	}
	if stats.Rederived == 0 {
		t.Errorf("corrupted %s was not re-derived from provenance: %+v", victim, stats)
	}
	if stats.Quarantined == 0 {
		t.Errorf("damaged replicas were not quarantined: %+v", stats)
	}
	if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
		t.Error("re-derived output differs from the original")
	}
	t.Logf("provenance re-derivation: pruned=%d checksumFailures=%d quarantined=%d rederived=%d",
		stats.PrunedJobs, stats.ChecksumFailures, stats.Quarantined, stats.Rederived)
	// The healed result file verifies everywhere it is registered.
	for _, p := range h.r.Lookup(victim) {
		site, path, _ := gridftp.ParseURL(p.URL)
		if err := h.ftp.Store(site).Verify(path); err != nil {
			t.Errorf("%s at %s not healed: %v", victim, site, err)
		}
	}
}

func TestComputeWithContextCanceledBeforeStart(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, 3, func(c *Config) { c.JournalDir = dir })
	tab := h.inputTable(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := h.svc.ComputeWithContext(ctx, tab, "COMA", nil)
	if !errors.Is(err, dagman.ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled compute = %v, want abort wrapping context.Canceled", err)
	}
	recs, _, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[len(recs)-1].Kind != journal.KindAborted {
		t.Fatalf("journal must end with a clean abort record, got %+v", recs)
	}
}

// gateTransport blocks the first archive fetch until released, giving the
// cancel test a deterministic window while the request is provably running.
type gateTransport struct {
	base    http.RoundTripper
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	return g.base.RoundTrip(req)
}

func TestCancelEndpointAbortsRunningRequest(t *testing.T) {
	dir := t.TempDir()
	gate := &gateTransport{
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	h := newHarness(t, 3, func(c *Config) {
		c.JournalDir = dir
		gate.base = c.HTTPClient.Transport
		if gate.base == nil {
			gate.base = http.DefaultTransport
		}
		c.HTTPClient = &http.Client{Transport: gate}
	})
	tab := h.inputTable(t)

	srv := httptest.NewServer(h.svc.Handler())
	defer srv.Close()
	var body strings.Builder
	if err := votable.WriteTable(&body, tab); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/galmorph?cluster=COMA", "text/xml", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	path := readAll(t, resp)
	id := strings.TrimPrefix(path, "/status?id=")

	<-gate.started // the request is now provably mid-flight
	cresp, err := http.Post(srv.URL+"/cancel?id="+id, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusAccepted {
		t.Fatalf("/cancel status = %d", cresp.StatusCode)
	}
	close(gate.release)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := h.svc.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateRunning {
			if st.State != StateFailed || !strings.Contains(st.Message, "aborted") {
				t.Fatalf("canceled request state = %s message = %q", st.State, st.Message)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never reached a terminal state after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	recs, _, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[len(recs)-1].Kind != journal.KindAborted {
		t.Fatalf("canceled run's journal must end with an abort record, got %d records", len(recs))
	}

	// Unknown IDs are a 404.
	nresp, err := http.Post(srv.URL+"/cancel?id=req-999999", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("/cancel unknown id status = %d", nresp.StatusCode)
	}
}

// TestResumeWithWallClockExpiredProxy is the regression for the
// time.Now() that used to live in the proxy admission check: a run is
// admitted with a valid credential, crashes mid-flight, and the machine
// stays down long past the credential's lifetime. Resume must not
// re-consult the wall clock — the original admission governs the run —
// and the resumed output must be byte-identical to the uninterrupted
// run's.
func TestResumeWithWallClockExpiredProxy(t *testing.T) {
	const nGalaxies = 4
	want, baseRecs, _ := journaledRun(t, nGalaxies, 1)
	events := len(baseRecs) - 2
	k := events / 2

	// One mutable fake instant drives both the credential repository and
	// the service's admission clock.
	now := time.Date(2004, 6, 1, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	repo := myproxy.NewWithClock(clock)
	if err := repo.Delegate("nvoportal", "pw", "/CN=NVO Portal", time.Hour, time.Hour); err != nil {
		t.Fatal(err)
	}
	var issued myproxy.Proxy
	dir := t.TempDir()
	h := newHarness(t, nGalaxies, func(c *Config) {
		c.JournalDir = dir
		c.CrashAfterEvents = k
		c.Now = clock
		c.Proxy = func() (myproxy.Proxy, error) {
			p, err := repo.Retrieve("nvoportal", "pw", 30*time.Minute)
			issued = p
			return p, err
		}
	})
	tab := h.inputTable(t)
	if _, _, err := h.svc.Compute(tab, "COMA"); !errors.Is(err, journal.ErrCrash) {
		t.Fatalf("crash did not fire: %v", err)
	}

	// The outage outlives the credential by a wide margin.
	now = now.Add(48 * time.Hour)
	if issued.Valid(now) {
		t.Fatal("test is vacuous: the issued proxy is still valid after the outage")
	}

	svc2, err := h.svc.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := svc2.Resume("COMA")
	if err != nil {
		t.Fatalf("resume with wall-clock-expired proxy: %v", err)
	}
	if out != "COMA.vot" {
		t.Fatalf("resume output %q", out)
	}
	if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
		t.Fatal("resumed output differs from the uninterrupted run")
	}
}
