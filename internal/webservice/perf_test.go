package webservice

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/journal"
	"repro/internal/pegasus"
	"repro/internal/tcat"
	"repro/internal/votable"
)

// throughputConfig turns on every PR 4 planner/scheduler optimization.
func throughputConfig(c *Config) {
	c.Selection = pegasus.SelectLocality
	c.ClusterSize = 16
	c.SchedOverhead = 500 * time.Millisecond
	c.TransferSlots = 2
}

// TestComputeIsSingleRLSRoundTripPerPlan: planning an end-to-end request
// costs exactly one RLS read round trip, however many galaxies it carries.
func TestComputeIsSingleRLSRoundTripPerPlan(t *testing.T) {
	h := newHarness(t, 12, nil)
	tab := h.inputTable(t)
	_, stats, err := h.svc.Compute(tab, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if stats.RLSRoundTrips != 1 {
		t.Errorf("planning cost %d RLS round trips, want 1", stats.RLSRoundTrips)
	}
}

// TestThroughputOutputByteIdentical is the tentpole's correctness gate: the
// fully optimized pipeline — locality selection, clustering, transfer lanes,
// submission overhead — produces a VOTable byte-identical to the paper's
// serial unclustered configuration.
func TestThroughputOutputByteIdentical(t *testing.T) {
	const n = 10
	base := newHarness(t, n, nil)
	want, _, err := base.svc.Compute(base.inputTable(t), "COMA")
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := base.outputBytes(t, want)

	opt := newHarness(t, n, throughputConfig)
	got, stats, err := opt.svc.Compute(opt.inputTable(t), "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("output LFN %q != %q", got, want)
	}
	if string(opt.outputBytes(t, got)) != string(wantBytes) {
		t.Fatal("optimized pipeline changed the output VOTable bytes")
	}
	if stats.ClusteredTasks == 0 || stats.ClusteredNodes == 0 {
		t.Errorf("optimized run clustered nothing: %+v", stats)
	}
}

// TestClusteringReducesScheduleEventsAndMakespan: under the serialized
// Condor-G submission model, batching 16 jobs per task must cut both the
// number of scheduler events and the model-clock makespan.
func TestClusteringReducesScheduleEventsAndMakespan(t *testing.T) {
	const n = 32
	run := func(clusterSize int) RunStats {
		h := newHarness(t, n, func(c *Config) {
			c.ClusterSize = clusterSize
			c.SchedOverhead = time.Second
		})
		_, stats, err := h.svc.Compute(h.inputTable(t), "COMA")
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	serial := run(1)
	clustered := run(16)
	if clustered.ScheduleEvents >= serial.ScheduleEvents {
		t.Errorf("clustered run used %d schedule events, serial %d — no reduction",
			clustered.ScheduleEvents, serial.ScheduleEvents)
	}
	if clustered.Makespan >= serial.Makespan {
		t.Errorf("clustered makespan %v >= serial %v — overhead not amortized",
			clustered.Makespan, serial.Makespan)
	}
	if serial.ClusteredTasks != 0 {
		t.Errorf("serial run reported %d clustered tasks", serial.ClusteredTasks)
	}
}

// withComputeAtCacheSite adds the cache site to the compute fabric, so the
// locality policy has a site where the input replicas already live.
func withComputeAtCacheSite(c *Config) {
	for _, tr := range []string{"galMorph", "concatVOT"} {
		_ = c.TC.Add(tcat.Entry{Transformation: tr, Site: "isi", Path: "/nvo/bin/" + tr})
	}
	c.Pools = append(c.Pools, condor.Pool{Name: "isi", Slots: 8})
}

// TestLocalityReducesStagedBytes: when the cache site can compute, locality
// selection runs cutouts where their images already live and moves fewer
// bytes than the paper's random placement.
func TestLocalityReducesStagedBytes(t *testing.T) {
	const n = 16
	run := func(sel pegasus.SiteSelection) RunStats {
		h := newHarness(t, n, func(c *Config) {
			withComputeAtCacheSite(c)
			c.Selection = sel
		})
		_, stats, err := h.svc.Compute(h.inputTable(t), "COMA")
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	random := run(pegasus.SelectRandom)
	local := run(pegasus.SelectLocality)
	if local.BytesStaged >= random.BytesStaged {
		t.Errorf("locality staged %d bytes, random %d — no reduction",
			local.BytesStaged, random.BytesStaged)
	}
	if local.PlannedBytesMoved >= random.PlannedBytesMoved {
		t.Errorf("locality planned %d bytes moved, random %d — no reduction",
			local.PlannedBytesMoved, random.PlannedBytesMoved)
	}
	if local.TransferNodes >= random.TransferNodes {
		t.Errorf("locality plan has %d transfer nodes, random %d",
			local.TransferNodes, random.TransferNodes)
	}
}

// TestStatsEndpointAndPprof: /stats exposes the service-level throughput
// counters, and the pprof endpoints mount only when configured.
func TestStatsEndpointAndPprof(t *testing.T) {
	h := newHarness(t, 6, func(c *Config) {
		throughputConfig(c)
		c.EnablePprof = true
	})
	srv := httptest.NewServer(h.svc.Handler())
	t.Cleanup(srv.Close)

	var buf bytes.Buffer
	if err := votable.WriteTable(&buf, h.inputTable(t)); err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+"/galmorph?cluster=COMA", "text/xml", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := h.svc.Status("req-000001")
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateCompleted {
			break
		}
		if st.State == StateFailed {
			t.Fatalf("request failed: %s", st.Message)
		}
		if time.Now().After(deadline) {
			t.Fatal("request did not complete in time")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests != 1 || stats.Completed != 1 {
		t.Errorf("stats = %+v, want 1 completed request", stats)
	}
	if stats.RLSRoundTrips < 1 {
		t.Error("stats missing RLS round-trip accounting")
	}
	if stats.ScheduleEvents == 0 || stats.ClusteredTasks == 0 {
		t.Errorf("stats missing scheduler accounting: %+v", stats)
	}
	if stats.MemoMisses == 0 {
		t.Errorf("stats missing memo accounting: %+v", stats)
	}

	resp, err = srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d with EnablePprof", resp.StatusCode)
	}

	// Without the knob the profiling surface stays unmounted.
	plain := newHarness(t, 2, nil)
	srv2 := httptest.NewServer(plain.svc.Handler())
	t.Cleanup(srv2.Close)
	resp, err = srv2.Client().Get(srv2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof mounted without EnablePprof")
	}
}

// TestClusteredKillAndResumeByteIdentity re-runs the crash-recovery sweep
// with clustering and the throughput knobs on: per-inner-node journaling
// must keep every kill point resumable to the exact same bytes.
func TestClusteredKillAndResumeByteIdentity(t *testing.T) {
	const nGalaxies = 4

	// Uninterrupted clustered run gives the reference bytes (equal to the
	// serial ones by TestThroughputOutputByteIdentical).
	baseDir := t.TempDir()
	base := newHarness(t, nGalaxies, func(c *Config) {
		throughputConfig(c)
		c.JournalDir = baseDir
	})
	if _, _, err := base.svc.Compute(base.inputTable(t), "COMA"); err != nil {
		t.Fatal(err)
	}
	want := base.outputBytes(t, "COMA.vot")
	recs, _, err := journal.Replay(filepath.Join(baseDir, "COMA.journal"))
	if err != nil {
		t.Fatal(err)
	}
	events := len(recs) - 2
	if events < 10 {
		t.Fatalf("workflow too small for a sweep: %d events", events)
	}

	for k := 1; k < events; k++ {
		dir := t.TempDir()
		h := newHarness(t, nGalaxies, func(c *Config) {
			throughputConfig(c)
			c.JournalDir = dir
			c.CrashAfterEvents = k
		})
		if _, _, err := h.svc.Compute(h.inputTable(t), "COMA"); !errors.Is(err, journal.ErrCrash) {
			t.Fatalf("kill point %d: crash did not fire: %v", k, err)
		}
		svc2, err := h.svc.Reopen()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := svc2.Resume("COMA"); err != nil {
			t.Fatalf("kill point %d: resume: %v", k, err)
		}
		if got := h.outputBytes(t, "COMA.vot"); string(got) != string(want) {
			t.Fatalf("kill point %d: clustered resume changed the output bytes", k)
		}
		// No node the journal recorded as completed may re-run.
		after, _, err := journal.Replay(filepath.Join(dir, "COMA.journal"))
		if err != nil {
			t.Fatal(err)
		}
		doneAt := map[string]bool{}
		for i, r := range after {
			if r.Kind == journal.KindSubmitted && doneAt[r.Node] {
				t.Fatalf("kill point %d: completed node %s re-submitted (record %d)", k, r.Node, i)
			}
			if r.Kind == journal.KindCompleted || r.Kind == journal.KindRestored {
				doneAt[r.Node] = true
			}
		}
	}
}
