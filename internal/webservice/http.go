package webservice

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/votable"
)

// Handler exposes the compute service over HTTP, following the asynchronous
// protocol of §4.3: the submission response carries the status URL; the
// client polls it until a "job completed" message appears together with the
// result URL.
//
//	POST /galmorph?cluster=NAME   body: VOTable       -> text: status URL path
//	GET  /status?id=req-000001                        -> JSON Status
//	GET  /result?lfn=NAME.vot                          -> VOTable
//	POST /cancel?id=req-000001                         -> 202 Accepted
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/galmorph", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		cluster := req.URL.Query().Get("cluster")
		if cluster == "" {
			http.Error(w, "missing cluster", http.StatusBadRequest)
			return
		}
		tab, err := votable.ReadTable(req.Body)
		if err != nil {
			http.Error(w, "bad VOTable: "+err.Error(), http.StatusBadRequest)
			return
		}
		id, err := s.Submit(tab, cluster)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "/status?id=%s", id)
	})

	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		st, err := s.Status(req.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		resp := struct {
			Status
			ResultURL string `json:",omitempty"`
		}{Status: st}
		if st.State == StateCompleted {
			resp.ResultURL = "/result?lfn=" + st.ResultLFN
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("/cancel", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Cancel(req.URL.Query().Get("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})

	mux.HandleFunc("/result", func(w http.ResponseWriter, req *http.Request) {
		lfn := req.URL.Query().Get("lfn")
		if lfn == "" {
			http.Error(w, "missing lfn", http.StatusBadRequest)
			return
		}
		tab, err := s.ResultTable(lfn)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/xml")
		_ = votable.WriteTable(w, tab)
	})

	return mux
}
