package webservice

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/fabric"
	"repro/internal/votable"
)

// ServiceStats is the observability snapshot /stats returns: cumulative
// request-level accounting (for requests made through Submit) plus the live
// catalog and cache counters the throughput work optimizes, plus the
// fabric's fleet-wide admission/fair-share counters.
type ServiceStats struct {
	Requests  int
	Completed int
	Failed    int

	// Fleet is the fabric's admission-control and fair-share snapshot:
	// admitted/shed/queued/running fleet-wide and per tenant, with each
	// tenant's charged model time and fair-share debt.
	Fleet fabric.FleetSnapshot

	RLSRoundTrips      int64 // catalog read round trips since process start
	ReplicaCacheHits   int64
	ReplicaCacheMisses int64

	BytesStaged       int64
	PlannedBytesMoved int64
	ScheduleEvents    int
	ClusteredTasks    int
	ClusteredNodes    int
	MemoHits          int
	MemoMisses        int
}

// Stats aggregates the service-level counters across all requests.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out ServiceStats
	for _, st := range s.requests {
		out.Requests++
		switch st.State {
		case StateCompleted:
			out.Completed++
		case StateFailed:
			out.Failed++
		}
		out.BytesStaged += st.Stats.BytesStaged
		out.PlannedBytesMoved += st.Stats.PlannedBytesMoved
		out.ScheduleEvents += st.Stats.ScheduleEvents
		out.ClusteredTasks += st.Stats.ClusteredTasks
		out.ClusteredNodes += st.Stats.ClusteredNodes
		out.MemoHits += st.Stats.MemoHits
		out.MemoMisses += st.Stats.MemoMisses
	}
	out.RLSRoundTrips = s.cfg.RLS.RoundTrips()
	out.ReplicaCacheHits, out.ReplicaCacheMisses = s.replicas.Stats()
	out.Fleet = s.cfg.Fabric.Snapshot()
	return out
}

// Handler exposes the compute service over HTTP, following the asynchronous
// protocol of §4.3: the submission response carries the status URL; the
// client polls it until a "job completed" message appears together with the
// result URL.
//
//	POST /galmorph?cluster=NAME[&tenant=T&priority=N]  -> text: status URL path
//	                              body: VOTable
//	       202 Accepted: admitted (running or queued under fair share)
//	       429 + Retry-After: tenant over its workflow-queue quota
//	       503 + Retry-After: fabric queue full or shutting down
//	GET  /status?id=req-000001                        -> JSON Status
//	GET  /result?lfn=NAME.vot                          -> VOTable
//	POST /cancel?id=req-000001                         -> 202 Accepted
//	POST /requeue?id=req-000001                        -> 202 Accepted
//	       re-admits a failed journaled request under its original tenant
//	       and priority and resumes it from its journal; shed like a fresh
//	       submission (429/503 + Retry-After) when over quota
//	GET  /stats                                        -> JSON ServiceStats
//	       includes the fabric's preemption counters (Preempted/Requeued)
//
// With Config.EnablePprof set, the standard net/http/pprof profiling
// endpoints are also mounted under /debug/pprof/.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(s.Stats())
	})

	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	mux.HandleFunc("/galmorph", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		cluster := req.URL.Query().Get("cluster")
		if cluster == "" {
			http.Error(w, "missing cluster", http.StatusBadRequest)
			return
		}
		tab, err := votable.ReadTable(req.Body)
		if err != nil {
			http.Error(w, "bad VOTable: "+err.Error(), http.StatusBadRequest)
			return
		}
		priority, _ := strconv.Atoi(req.URL.Query().Get("priority"))
		id, err := s.SubmitFor(tab, cluster, RequestOptions{
			Tenant:   req.URL.Query().Get("tenant"),
			Priority: priority,
		})
		if err != nil {
			// Overload shedding is deterministic and typed: tell the client
			// whether its own quota (429) or the fleet (503) refused it, and
			// when to come back.
			if shed, ok := fabric.AsShed(err); ok {
				secs := int((shed.RetryAfter + time.Second - 1) / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				http.Error(w, err.Error(), shed.HTTPStatus)
				return
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "/status?id=%s", id)
	})

	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		st, err := s.Status(req.URL.Query().Get("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		resp := struct {
			Status
			ResultURL string `json:",omitempty"`
		}{Status: st}
		if st.State == StateCompleted {
			resp.ResultURL = "/result?lfn=" + st.ResultLFN
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("/cancel", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Cancel(req.URL.Query().Get("id")); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})

	mux.HandleFunc("/requeue", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Requeue(req.URL.Query().Get("id")); err != nil {
			if shed, ok := fabric.AsShed(err); ok {
				secs := int((shed.RetryAfter + time.Second - 1) / time.Second)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				http.Error(w, err.Error(), shed.HTTPStatus)
				return
			}
			if errors.Is(err, ErrNotFound) {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})

	mux.HandleFunc("/result", func(w http.ResponseWriter, req *http.Request) {
		lfn := req.URL.Query().Get("lfn")
		if lfn == "" {
			http.Error(w, "missing lfn", http.StatusBadRequest)
			return
		}
		tab, err := s.ResultTable(lfn)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/xml")
		_ = votable.WriteTable(w, tab)
	})

	return mux
}
