package portal

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/registry"
)

// DiscoverConfig builds a portal configuration by querying an NVO resource
// registry for the needed service types instead of hard-coding endpoints —
// the capability the paper lists as missing infrastructure ("a general
// registry of image and catalog services ... would allow the user to
// discover and choose the appropriate data resources rather than being
// limited to the ones that were hard-coded into the portal", §4.2/§5).
//
// All discovered Cone Search services are used (the first, by registry ID,
// becomes the primary catalog); all SIA services are searched for
// large-scale images; the first cutout and compute services are selected.
func DiscoverConfig(reg *registry.Client, clusters []ClusterEntry, hc *http.Client) (Config, error) {
	cfg := Config{Clusters: clusters, HTTPClient: hc}

	cones, err := reg.Query(registry.TypeConeSearch, "")
	if err != nil {
		return Config{}, fmt.Errorf("portal: registry cone query: %w", err)
	}
	for _, e := range cones {
		cfg.ConeServices = append(cfg.ConeServices, e.BaseURL)
	}

	sias, err := reg.Query(registry.TypeSIA, "")
	if err != nil {
		return Config{}, fmt.Errorf("portal: registry SIA query: %w", err)
	}
	for _, e := range sias {
		cfg.SIAServices = append(cfg.SIAServices, e.BaseURL)
	}

	cutouts, err := reg.Query(registry.TypeCutout, "")
	if err != nil {
		return Config{}, fmt.Errorf("portal: registry cutout query: %w", err)
	}
	if len(cutouts) > 0 {
		cfg.CutoutService = cutouts[0].BaseURL
	}

	computes, err := reg.Query(registry.TypeCompute, "")
	if err != nil {
		return Config{}, fmt.Errorf("portal: registry compute query: %w", err)
	}
	if len(computes) > 0 {
		cfg.ComputeService = computes[0].BaseURL
	}

	switch {
	case len(cfg.ConeServices) == 0:
		return Config{}, errors.New("portal: registry knows no cone-search service")
	case cfg.CutoutService == "":
		return Config{}, errors.New("portal: registry knows no cutout service")
	case cfg.ComputeService == "":
		return Config{}, errors.New("portal: registry knows no compute service")
	}
	return cfg, nil
}

// NewFromRegistry discovers services and builds the portal in one step.
func NewFromRegistry(reg *registry.Client, clusters []ClusterEntry, hc *http.Client) (*Portal, error) {
	cfg, err := DiscoverConfig(reg, clusters, hc)
	if err != nil {
		return nil, err
	}
	return New(cfg)
}
