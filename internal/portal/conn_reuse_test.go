package portal

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/wcs"
)

// countingServer stands up one archive behind a server that counts both HTTP
// requests and freshly accepted TCP connections, so a test can tell keep-alive
// reuse apart from per-request redials.
func countingServer(t *testing.T) (srv *httptest.Server, cl *skysim.Cluster, requests, conns *int64) {
	t.Helper()
	cl = skysim.Generate(skysim.Spec{
		Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.023,
		NumGalaxies: 10, Seed: 21,
	})
	arch := services.NewArchive("mast", cl)
	requests, conns = new(int64), new(int64)
	srv = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(requests, 1)
		arch.Handler().ServeHTTP(w, r)
	}))
	srv.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			atomic.AddInt64(conns, 1)
		}
	}
	srv.Start()
	t.Cleanup(srv.Close)
	return srv, cl, requests, conns
}

func reusePortal(t *testing.T, url string, cl *skysim.Cluster, client *http.Client) *Portal {
	t.Helper()
	p, err := New(Config{
		Clusters: []ClusterEntry{{
			Name: "COMA", Center: cl.Center, Redshift: cl.Redshift,
			SearchRadiusDeg: 8*cl.CoreRadiusDeg + 0.01,
		}},
		ConeServices:       []string{url + "/cone"},
		SIAServices:        []string{url + "/sia"},
		CutoutService:      url + "/siacut",
		ComputeService:     "http://unused.invalid",
		HTTPClient:         client,
		MaxParallelQueries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPortalReusesKeepAliveConnections: the portal's default pooled client
// must carry many sequential archive calls over far fewer TCP connections
// than requests — each redial would pay a fresh wide-area handshake.
func TestPortalReusesKeepAliveConnections(t *testing.T) {
	srv, cl, requests, conns := countingServer(t)
	p := reusePortal(t, srv.URL, cl, nil) // nil => httpclient.Shared()

	for i := 0; i < 4; i++ {
		if _, _, err := p.BuildCatalogReport("COMA"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := p.FindImagesReport("COMA"); err != nil {
			t.Fatal(err)
		}
	}

	reqs, dials := atomic.LoadInt64(requests), atomic.LoadInt64(conns)
	if reqs < 8 {
		t.Fatalf("test issued only %d requests, cannot judge reuse", reqs)
	}
	if dials*2 > reqs {
		t.Errorf("pooled client opened %d connections for %d requests — keep-alives not reused", dials, reqs)
	}
}

// TestFreshClientDialsPerRequest documents the baseline the pool removes: a
// client with keep-alives disabled opens one connection per request.
func TestFreshClientDialsPerRequest(t *testing.T) {
	srv, cl, requests, conns := countingServer(t)
	churn := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	p := reusePortal(t, srv.URL, cl, churn)

	if _, _, err := p.BuildCatalogReport("COMA"); err != nil {
		t.Fatal(err)
	}
	reqs, dials := atomic.LoadInt64(requests), atomic.LoadInt64(conns)
	if dials < reqs {
		t.Errorf("keep-alive-disabled client opened %d connections for %d requests", dials, reqs)
	}
}
