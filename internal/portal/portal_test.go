package portal

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/faults"
	"repro/internal/gridftp"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/rls"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/tcat"
	"repro/internal/wcs"
	"repro/internal/webservice"
)

// fixture wires archives and a compute service behind httptest servers and
// builds a portal over them.
type fixture struct {
	portal  *Portal
	cluster *skysim.Cluster
}

func newFixture(t testing.TB, nGalaxies int, mut func(*Config)) *fixture {
	t.Helper()
	cl := skysim.Generate(skysim.Spec{
		Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.023,
		NumGalaxies: nGalaxies, Seed: 21,
	})
	mast := services.NewArchive("mast", cl)
	ned := services.NewArchive("ned", cl)
	mastSrv := httptest.NewServer(mast.Handler())
	nedSrv := httptest.NewServer(ned.Handler())
	t.Cleanup(mastSrv.Close)
	t.Cleanup(nedSrv.Close)

	r := rls.New()
	ftp := gridftp.NewService(gridftp.Network{})
	tc := tcat.New()
	for _, site := range []string{"usc", "wisc"} {
		_ = tc.Add(tcat.Entry{Transformation: "galMorph", Site: site, Path: "/nvo/bin/galMorph"})
		_ = tc.Add(tcat.Entry{Transformation: "concatVOT", Site: site, Path: "/nvo/bin/concatVOT"})
	}
	svc, err := webservice.New(webservice.Config{
		RLS: r, TC: tc, GridFTP: ftp,
		Pools:      []condor.Pool{{Name: "usc", Slots: 8}, {Name: "wisc", Slots: 8}},
		HTTPClient: mastSrv.Client(),
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wsSrv := httptest.NewServer(svc.Handler())
	t.Cleanup(wsSrv.Close)

	cfg := Config{
		Clusters: []ClusterEntry{{
			Name: "COMA", Center: cl.Center, Redshift: cl.Redshift,
			SearchRadiusDeg: 8*cl.CoreRadiusDeg + 0.01,
		}},
		ConeServices:   []string{nedSrv.URL + "/cone", mastSrv.URL + "/cone"},
		SIAServices:    []string{mastSrv.URL + "/sia"},
		CutoutService:  mastSrv.URL + "/siacut",
		ComputeService: wsSrv.URL,
		HTTPClient:     mastSrv.Client(),
		PollInterval:   2 * time.Millisecond,
		PollTimeout:    30 * time.Second,
	}
	if mut != nil {
		mut(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{portal: p, cluster: cl}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := New(Config{Clusters: []ClusterEntry{{Name: "X"}}}); err == nil {
		t.Error("config without services must fail")
	}
}

func TestClustersAndLookup(t *testing.T) {
	f := newFixture(t, 5, nil)
	cls := f.portal.Clusters()
	if len(cls) != 1 || cls[0].Name != "COMA" {
		t.Errorf("clusters = %v", cls)
	}
	entry, err := f.portal.Cluster("COMA")
	if err != nil || entry.SearchRadiusDeg <= 0 {
		t.Errorf("Cluster = %+v, %v", entry, err)
	}
	if _, err := f.portal.Cluster("GHOST"); err == nil {
		t.Error("unknown cluster must fail")
	}
}

func TestFindImages(t *testing.T) {
	f := newFixture(t, 5, nil)
	imgs, err := f.portal.FindImages("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 { // optical + xray from the single SIA service
		t.Fatalf("images = %d", len(imgs))
	}
	if _, err := f.portal.FindImages("GHOST"); err == nil {
		t.Error("unknown cluster must fail")
	}
}

func TestFindImagesCache(t *testing.T) {
	f := newFixture(t, 5, func(c *Config) { c.CacheImageSearch = true })
	a, err := f.portal.FindImages("COMA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.portal.FindImages("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Error("cached result differs")
	}
	// Mutating the returned slice must not poison the cache.
	b[0].Title = "mutated"
	c, _ := f.portal.FindImages("COMA")
	if c[0].Title == "mutated" {
		t.Error("cache must return copies")
	}
}

func TestBuildCatalog(t *testing.T) {
	f := newFixture(t, 15, nil)
	cat, err := f.portal.BuildCatalog("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumRows() != 15 {
		t.Fatalf("rows = %d", cat.NumRows())
	}
	for _, col := range []string{"id", "ra", "dec", "z", "acref"} {
		if cat.ColumnIndex(col) < 0 {
			t.Errorf("missing column %q; have %v", col, cat.Fields)
		}
	}
	// The join must have pulled the secondary catalog's columns.
	if cat.ColumnIndex("mast_mag") < 0 {
		t.Errorf("left-join columns missing; have %+v", cat.Fields)
	}
	// acrefs must be absolute.
	if !strings.HasPrefix(cat.Cell(0, "acref"), "http") {
		t.Errorf("acref = %q", cat.Cell(0, "acref"))
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	f := newFixture(t, 12, nil)
	res, err := f.portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 12 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	for _, col := range []string{"asymmetry", "concentration", "surface_brightness", "valid"} {
		if res.Table.ColumnIndex(col) < 0 {
			t.Errorf("merged column %q missing", col)
		}
	}
	validWithValues := 0
	for i := 0; i < res.Table.NumRows(); i++ {
		if v, ok := res.Table.Bool(i, "valid"); ok && v {
			if _, ok := res.Table.Float(i, "asymmetry"); ok {
				validWithValues++
			}
		}
	}
	if validWithValues < 8 {
		t.Errorf("only %d valid measured galaxies", validWithValues)
	}
	if len(res.Images) != 2 {
		t.Errorf("images = %d", len(res.Images))
	}
	if res.ComputeTime <= 0 {
		t.Error("compute time not recorded")
	}
}

func TestAnalyzeUnknownCluster(t *testing.T) {
	f := newFixture(t, 5, nil)
	if _, err := f.portal.Analyze("GHOST"); err == nil {
		t.Error("unknown cluster must fail")
	}
}

func TestHTMLHandler(t *testing.T) {
	f := newFixture(t, 8, nil)
	srv := httptest.NewServer(f.portal.Handler())
	defer srv.Close()
	hc := srv.Client()

	get := func(path string) string {
		t.Helper()
		resp, err := hc.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	home := get("/")
	if !strings.Contains(home, "COMA") || !strings.Contains(home, "Select a galaxy cluster") {
		t.Errorf("home page:\n%s", home)
	}
	clusterPage := get("/cluster?name=COMA")
	if !strings.Contains(clusterPage, "Large-scale images") || !strings.Contains(clusterPage, "Begin morphology analysis") {
		t.Errorf("cluster page:\n%s", clusterPage)
	}
	analyzePage := get("/analyze?name=COMA")
	if !strings.Contains(analyzePage, "Analysis complete") || !strings.Contains(analyzePage, "asymmetry") {
		t.Errorf("analyze page:\n%s", analyzePage)
	}
	errPage := get("/cluster?name=GHOST")
	if !strings.Contains(errPage, "unknown cluster") {
		t.Errorf("error page:\n%s", errPage)
	}
}

func BenchmarkBuildCatalog(b *testing.B) {
	f := newFixture(b, 50, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.portal.BuildCatalog("COMA"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAsyncAnalysis(t *testing.T) {
	f := newFixture(t, 10, nil)
	id, err := f.portal.StartAnalysis("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.portal.StartAnalysis("GHOST"); err == nil {
		t.Error("unknown cluster must fail immediately")
	}
	deadline := time.Now().Add(15 * time.Second)
	var snap JobSnapshot
	sawProgress := false
	for {
		snap, err = f.portal.JobStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.JobsTotal > 0 {
			sawProgress = true
		}
		if snap.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async job did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap.State != JobCompleted {
		t.Fatalf("job = %+v", snap)
	}
	if snap.Result == nil || snap.Result.Table.NumRows() != 10 {
		t.Fatalf("result missing: %+v", snap)
	}
	if !sawProgress && snap.JobsTotal == 0 {
		t.Error("no Grid progress was ever reported")
	}
	if _, err := f.portal.JobStatus("job-999999"); err == nil {
		t.Error("unknown job must fail")
	}
	jobs := f.portal.Jobs()
	if len(jobs) != 1 || jobs[0].ID != id {
		t.Errorf("Jobs = %+v", jobs)
	}
}

func TestAsyncHTMLFlow(t *testing.T) {
	f := newFixture(t, 6, nil)
	srv := httptest.NewServer(f.portal.Handler())
	defer srv.Close()
	hc := srv.Client()

	// /start redirects to the job page.
	resp, err := hc.Get(srv.URL + "/start?name=COMA")
	if err != nil {
		t.Fatal(err)
	}
	finalURL := resp.Request.URL.String()
	body := readBody(t, resp)
	if !strings.Contains(finalURL, "/job?id=job-") {
		t.Fatalf("redirect target = %s", finalURL)
	}
	if !strings.Contains(body, "Analysis job") {
		t.Errorf("job page:\n%s", body)
	}

	// Poll the job page until completed.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := hc.Get(finalURL)
		if err != nil {
			t.Fatal(err)
		}
		body = readBody(t, resp)
		if strings.Contains(body, "completed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job page never completed:\n%s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(body, "Analysis complete") || !strings.Contains(body, "asymmetry") {
		t.Errorf("completed job page lacks results:\n%s", body)
	}

	// Unknown job id renders an error.
	resp, _ = hc.Get(srv.URL + "/job?id=nope")
	if body := readBody(t, resp); !strings.Contains(body, "unknown job") {
		t.Errorf("unknown job page:\n%s", body)
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestDiscoverConfigAndNewFromRegistry(t *testing.T) {
	reg := registry.New()
	entries := []registry.Entry{
		{ID: "ivo://b/cone", Type: registry.TypeConeSearch, BaseURL: "http://b/cone"},
		{ID: "ivo://a/cone", Type: registry.TypeConeSearch, BaseURL: "http://a/cone"},
		{ID: "ivo://a/sia", Type: registry.TypeSIA, BaseURL: "http://a/sia"},
		{ID: "ivo://a/cut", Type: registry.TypeCutout, BaseURL: "http://a/siacut"},
		{ID: "ivo://c/compute", Type: registry.TypeCompute, BaseURL: "http://c"},
	}
	for _, e := range entries {
		if err := reg.Register(e); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(registry.Handler(reg))
	defer srv.Close()
	client := &registry.Client{Base: srv.URL}
	clusters := []ClusterEntry{{Name: "X", Center: wcs.New(0, 0)}}

	cfg, err := DiscoverConfig(client, clusters, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	// Primary cone service is the first by registry ID.
	if len(cfg.ConeServices) != 2 || cfg.ConeServices[0] != "http://a/cone" {
		t.Errorf("cone services = %v", cfg.ConeServices)
	}
	if cfg.CutoutService != "http://a/siacut" || cfg.ComputeService != "http://c" {
		t.Errorf("cutout/compute = %q / %q", cfg.CutoutService, cfg.ComputeService)
	}
	p, err := NewFromRegistry(client, clusters, srv.Client())
	if err != nil || p == nil {
		t.Fatalf("NewFromRegistry: %v", err)
	}

	// Remove the compute service: discovery must fail.
	if err := reg.Unregister("ivo://c/compute"); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverConfig(client, clusters, srv.Client()); err == nil {
		t.Error("missing compute service must fail discovery")
	}
	if err := reg.Unregister("ivo://a/cut"); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverConfig(client, clusters, srv.Client()); err == nil {
		t.Error("missing cutout service must fail discovery")
	}
}

func TestJobsNewestFirst(t *testing.T) {
	f := newFixture(t, 3, nil)
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := f.portal.StartAnalysis("COMA")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	jobs := f.portal.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for i := range jobs {
		if jobs[i].ID != ids[len(ids)-1-i] {
			t.Fatalf("order = %v (want newest first %v)", jobs, ids)
		}
	}
	// Wait for completion so goroutines don't leak past test end.
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := 0
		for _, id := range ids {
			if s, _ := f.portal.JobStatus(id); s.State != JobRunning {
				done++
			}
		}
		if done == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDegradedFanOut(t *testing.T) {
	cl := skysim.Generate(skysim.Spec{
		Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.023,
		NumGalaxies: 12, Seed: 21,
	})
	good := services.NewArchive("good", cl)
	flaky := services.NewArchive("flaky", cl)
	// The flaky archive is down for cone and SIA queries, indefinitely.
	flaky.SetInjector(faults.New(1,
		faults.Rule{Name: services.OpCone, Site: "flaky", Kind: faults.KindSiteDown},
		faults.Rule{Name: services.OpSIA, Site: "flaky", Kind: faults.KindSiteDown},
	))
	goodSrv := httptest.NewServer(good.Handler())
	flakySrv := httptest.NewServer(flaky.Handler())
	t.Cleanup(goodSrv.Close)
	t.Cleanup(flakySrv.Close)

	breakers := resilience.NewRegistry(resilience.BreakerConfig{
		FailureThreshold: 2, CooldownRejects: 100,
	})
	cfg := Config{
		Clusters: []ClusterEntry{{
			Name: "COMA", Center: cl.Center, Redshift: cl.Redshift,
			SearchRadiusDeg: 8*cl.CoreRadiusDeg + 0.01,
		}},
		ConeServices:   []string{goodSrv.URL + "/cone", flakySrv.URL + "/cone"},
		SIAServices:    []string{goodSrv.URL + "/sia", flakySrv.URL + "/sia"},
		CutoutService:  goodSrv.URL + "/siacut",
		ComputeService: "http://unused.invalid",
		HTTPClient:     goodSrv.Client(),
		Retry:          resilience.Policy{MaxAttempts: 2},
		Breakers:       breakers,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Image search: the dead service degrades, the live one still answers.
	recs, degraded, err := p.FindImagesReport("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("live SIA service must still contribute images")
	}
	if len(degraded) != 1 || degraded[0].Op != "sia" || degraded[0].Service != flakySrv.URL+"/sia" {
		t.Fatalf("degraded = %+v, want the flaky SIA service", degraded)
	}

	// Catalog build: the dead secondary cone degrades to a partial catalog.
	cat, catDeg, err := p.BuildCatalogReport("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if cat.NumRows() == 0 || cat.ColumnIndex("acref") < 0 {
		t.Error("partial catalog must still carry rows and cutout refs")
	}
	if len(catDeg) != 1 || catDeg[0].Op != "cone" {
		t.Fatalf("catalog degradations = %+v, want the flaky cone service", catDeg)
	}

	// Two failed attempts per endpoint tripped both circuits; the next pass
	// short-circuits without touching the network.
	if open := breakers.OpenCircuits(); len(open) != 2 {
		t.Fatalf("open circuits = %v, want flaky cone+sia", open)
	}
	_, catDeg, err = p.BuildCatalogReport("COMA")
	if err != nil || len(catDeg) != 1 {
		t.Fatalf("degraded rebuild: %+v, %v", catDeg, err)
	}
	if !strings.Contains(catDeg[0].Err, "circuit open") {
		t.Errorf("rebuild should hit the open circuit, got %q", catDeg[0].Err)
	}

	// A dead PRIMARY cone is fatal: without the base table there is nothing
	// to analyze.
	cfg.ConeServices = []string{flakySrv.URL + "/cone", goodSrv.URL + "/cone"}
	cfg.Breakers = nil
	p2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.BuildCatalog("COMA"); err == nil {
		t.Error("dead primary cone service must fail the build")
	}
}
