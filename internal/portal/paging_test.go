package portal

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/votable"
)

// TestPagedCatalogByteIdentical checks the tentpole invariant at the portal
// layer: with PageSize set, the catalog built from MAXREC/OFFSET pages
// renders byte-identically to the classic one-response-per-query build, and
// the image search returns the same records. All portals talk to the same
// archives so only the protocol differs.
func TestPagedCatalogByteIdentical(t *testing.T) {
	var baseCfg Config
	classic := newFixture(t, 25, func(c *Config) { baseCfg = *c })
	wantCat, err := classic.portal.BuildCatalog("COMA")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := votable.WriteTable(&want, wantCat); err != nil {
		t.Fatal(err)
	}
	wantImgs, err := classic.portal.FindImages("COMA")
	if err != nil {
		t.Fatal(err)
	}

	for _, pageSize := range []int{1, 7, 1000} {
		cfg := baseCfg
		cfg.PageSize = pageSize
		paged, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gotCat, degraded, err := paged.BuildCatalogReport("COMA")
		if err != nil {
			t.Fatalf("page size %d: %v", pageSize, err)
		}
		if len(degraded) != 0 {
			t.Fatalf("page size %d: unexpected degradations %+v", pageSize, degraded)
		}
		var got bytes.Buffer
		if err := votable.WriteTable(&got, gotCat); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("page size %d: paged catalog diverges from classic build", pageSize)
		}
		gotImgs, err := paged.FindImages("COMA")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotImgs, wantImgs) {
			t.Fatalf("page size %d: paged image search diverges", pageSize)
		}
	}
}
