package portal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/votable"
)

// AnalysisResult is what the user's results page is built from.
type AnalysisResult struct {
	Cluster string
	// Table is the galaxy catalog with the computed morphology columns
	// merged in (surface_brightness, concentration, asymmetry, valid).
	Table *votable.Table
	// Images are the large-scale image references shown to the user.
	Images []imageRef
	// Degraded lists the archive services the analysis proceeded without
	// (their images or joined columns are missing from the results page).
	Degraded []Degradation
	// Timing of the portal-side phases.
	ImageSearch time.Duration
	CatalogTime time.Duration
	ComputeTime time.Duration
}

type imageRef struct {
	Title string
	AcRef string
}

// Analyze runs the full Figure 5 flow for one cluster synchronously: find
// images, build the catalog, submit to the compute service, poll, merge.
// The submission carries Config.Priority as its fabric scheduling class.
func (p *Portal) Analyze(cluster string) (*AnalysisResult, error) {
	return p.analyzeWithProgress(cluster, p.cfg.Priority, nil)
}

// AnalyzeAt is Analyze with an explicit fabric scheduling class, overriding
// the Config.Priority default for this one submission.
func (p *Portal) AnalyzeAt(cluster string, priority int) (*AnalysisResult, error) {
	return p.analyzeWithProgress(cluster, priority, nil)
}

// analyzeWithProgress is Analyze with a Grid-progress callback fed from the
// compute service's status polling.
func (p *Portal) analyzeWithProgress(cluster string, priority int, onProgress func(done, total int)) (*AnalysisResult, error) {
	res := &AnalysisResult{Cluster: cluster}

	t0 := p.cfg.Now()
	images, imgDegraded, err := p.FindImagesReport(cluster)
	if err != nil {
		return nil, err
	}
	res.Degraded = append(res.Degraded, imgDegraded...)
	for _, im := range images {
		res.Images = append(res.Images, imageRef{Title: im.Title, AcRef: im.AcRef})
	}
	res.ImageSearch = p.cfg.Now().Sub(t0)

	t1 := p.cfg.Now()
	cat, catDegraded, err := p.BuildCatalogReport(cluster)
	if err != nil {
		return nil, err
	}
	res.Degraded = append(res.Degraded, catDegraded...)
	res.CatalogTime = p.cfg.Now().Sub(t1)

	t2 := p.cfg.Now()
	morph, err := p.compute(cat, cluster, priority, onProgress)
	if err != nil {
		return nil, err
	}
	// Merge the computed values into the galaxy catalog (§4.2: "the portal
	// merges [the output table] into the galaxy catalog").
	if err := votable.MergeColumns(cat, morph, "id", "id",
		"surface_brightness", "concentration", "asymmetry", "valid"); err != nil {
		return nil, err
	}
	res.ComputeTime = p.cfg.Now().Sub(t2)
	res.Table = cat
	return res, nil
}

// compute performs the §4.3 exchange with the web service: POST the
// VOTable, poll the returned status URL until "job completed", fetch the
// result table. This is the two-line .NET snippet of §4.2, spelled out.
func (p *Portal) compute(cat *votable.Table, cluster string, priority int, onProgress func(done, total int)) (*votable.Table, error) {
	var body bytes.Buffer
	if err := votable.WriteTable(&body, cat); err != nil {
		return nil, err
	}
	submitURL := fmt.Sprintf("%s/galmorph?cluster=%s", p.cfg.ComputeService, cluster)
	if priority != 0 {
		submitURL += fmt.Sprintf("&priority=%d", priority)
	}
	resp, err := p.cfg.HTTPClient.Post(submitURL, "text/xml", &body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrComputeFailed, err)
	}
	statusPath, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("%w: submit status %d: %s", ErrComputeFailed, resp.StatusCode, statusPath)
	}
	statusURL := p.cfg.ComputeService + strings.TrimSpace(string(statusPath))

	deadline := p.cfg.Now().Add(p.cfg.PollTimeout)
	for {
		st, err := p.pollOnce(statusURL)
		if err != nil {
			return nil, err
		}
		if onProgress != nil && st.JobsTotal > 0 {
			onProgress(st.JobsDone, st.JobsTotal)
		}
		switch st.State {
		case "completed":
			return p.fetchResult(p.cfg.ComputeService + st.ResultURL)
		case "failed":
			return nil, fmt.Errorf("%w: %s", ErrComputeFailed, st.Message)
		}
		if p.cfg.Now().After(deadline) {
			return nil, ErrTimeout
		}
		p.cfg.Sleep(p.cfg.PollInterval)
	}
}

type statusPayload struct {
	State     string
	Message   string
	ResultURL string
	JobsDone  int
	JobsTotal int
}

func (p *Portal) pollOnce(statusURL string) (statusPayload, error) {
	var st statusPayload
	resp, err := p.cfg.HTTPClient.Get(statusURL)
	if err != nil {
		return st, fmt.Errorf("%w: poll: %v", ErrComputeFailed, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%w: poll status %d", ErrComputeFailed, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("%w: poll decode: %v", ErrComputeFailed, err)
	}
	return st, nil
}

func (p *Portal) fetchResult(resultURL string) (*votable.Table, error) {
	resp, err := p.cfg.HTTPClient.Get(resultURL)
	if err != nil {
		return nil, fmt.Errorf("%w: result: %v", ErrComputeFailed, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: result status %d", ErrComputeFailed, resp.StatusCode)
	}
	return votable.ReadTable(resp.Body)
}
