package portal

import (
	"fmt"
	"sort"
)

// The paper's portal "operates in real-time with the multiple NVO services,
// waiting until all processing is done ... This synchronous behavior
// demonstrates a limitation of the portal as this processing can take up to
// a few hours; clearly an asynchronous response would be helpful." This file
// implements that asynchronous response: StartAnalysis returns a job ticket
// immediately; JobStatus reports progress (streamed from the compute
// service's DAGMan monitoring) until the result is ready.

// JobState is an asynchronous analysis job's lifecycle state.
type JobState string

// Job states.
const (
	JobRunning   JobState = "running"
	JobCompleted JobState = "completed"
	JobFailed    JobState = "failed"
)

// JobSnapshot is a point-in-time view of an asynchronous analysis.
type JobSnapshot struct {
	ID        string
	Cluster   string
	State     JobState
	Message   string
	JobsDone  int // Grid workflow progress, from the compute service
	JobsTotal int
	// Result is set once State == JobCompleted.
	Result *AnalysisResult
}

type jobRecord struct {
	snap JobSnapshot
	done chan struct{} // closed when the background analysis goroutine exits
}

// StartAnalysis launches the Figure 5 flow in the background and returns a
// job ID the caller polls with JobStatus. The submission carries
// Config.Priority as its fabric scheduling class.
func (p *Portal) StartAnalysis(cluster string) (string, error) {
	return p.StartAnalysisAt(cluster, p.cfg.Priority)
}

// StartAnalysisAt is StartAnalysis with an explicit fabric scheduling class.
func (p *Portal) StartAnalysisAt(cluster string, priority int) (string, error) {
	if _, err := p.Cluster(cluster); err != nil {
		return "", err
	}
	p.mu.Lock()
	p.nextJob++
	id := fmt.Sprintf("job-%06d", p.nextJob)
	if p.jobs == nil {
		p.jobs = map[string]*jobRecord{}
	}
	rec := &jobRecord{
		snap: JobSnapshot{ID: id, Cluster: cluster, State: JobRunning, Message: "accepted"},
		done: make(chan struct{}),
	}
	p.jobs[id] = rec
	p.mu.Unlock()

	go func() {
		defer close(rec.done)
		res, err := p.analyzeWithProgress(cluster, priority, func(done, total int) {
			p.mu.Lock()
			rec.snap.JobsDone = done
			rec.snap.JobsTotal = total
			p.mu.Unlock()
		})
		p.mu.Lock()
		defer p.mu.Unlock()
		if err != nil {
			rec.snap.State = JobFailed
			rec.snap.Message = err.Error()
			return
		}
		rec.snap.State = JobCompleted
		rec.snap.Message = "analysis complete"
		rec.snap.Result = res
	}()
	return id, nil
}

// AwaitJob blocks until the job's background goroutine has exited and
// returns the final snapshot. It is the join for StartAnalysis: a caller
// tearing down a portal waits here instead of polling JobStatus.
func (p *Portal) AwaitJob(id string) (JobSnapshot, error) {
	p.mu.Lock()
	rec, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return JobSnapshot{}, fmt.Errorf("portal: unknown job %q", id)
	}
	<-rec.done
	return p.JobStatus(id)
}

// JobStatus returns a snapshot of an asynchronous analysis.
func (p *Portal) JobStatus(id string) (JobSnapshot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rec, ok := p.jobs[id]
	if !ok {
		return JobSnapshot{}, fmt.Errorf("portal: unknown job %q", id)
	}
	return rec.snap, nil
}

// Jobs lists all known job IDs, newest first.
func (p *Portal) Jobs() []JobSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]JobSnapshot, 0, len(p.jobs))
	for _, rec := range p.jobs {
		out = append(out, rec.snap)
	}
	// Newest first by ID (ids are zero-padded and monotone).
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	return out
}
