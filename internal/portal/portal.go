// Package portal implements the user-facing web portal of the paper's §4.2
// (Figure 5), the piece STScI hosted: the user picks a galaxy cluster from
// an internal list; the portal looks up the cluster's position, searches the
// optical and X-ray image archives through SIA for large-scale images,
// builds the galaxy catalog by querying Cone Search services and merging
// their tables, attaches cutout references from the image cutout service,
// ships the combined VOTable to the Grid compute service, polls the returned
// status URL until "job completed", and merges the computed morphology
// columns back into the catalog.
//
// The portal operates synchronously toward its user ("waiting until all
// processing is done before returning the results page"), with the cached
// image-search option the paper describes.
package portal

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/httpclient"
	"sort"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/services"
	"repro/internal/votable"
	"repro/internal/wcs"
	"repro/internal/workpool"
)

// ClusterEntry is one row of the portal's internal cluster catalog.
type ClusterEntry struct {
	Name     string
	Center   wcs.SkyCoord
	Redshift float64
	// SearchRadiusDeg bounds the catalog cone search (default 0.5).
	SearchRadiusDeg float64
}

// Config wires the portal to the NVO services.
type Config struct {
	// Clusters is the internal catalog the user selects from.
	Clusters []ClusterEntry
	// ConeServices are Cone Search endpoints (e.g. NED, CNOC); the first
	// is the primary catalog, later ones contribute extra columns via a
	// left join on the id column.
	ConeServices []string
	// SIAServices are large-scale image endpoints (DSS, ROSAT, Chandra).
	SIAServices []string
	// CutoutService is the SIA cutout endpoint supplying per-galaxy acrefs.
	CutoutService string
	// ComputeService is the morphology web service base URL.
	ComputeService string

	HTTPClient *http.Client
	// PollInterval is the status-URL polling period (default 10ms; the
	// real portal used seconds, but model time is decoupled from wall
	// time here).
	PollInterval time.Duration
	// PollTimeout bounds how long Analyze waits (default 60s).
	PollTimeout time.Duration
	// CacheImageSearch enables the cached image-search results option.
	CacheImageSearch bool
	// Retry is applied to every archive call (cone, SIA, cutout). The zero
	// value means up to 3 attempts with default backoff; set MaxAttempts: 1
	// for the classic fail-fast portal.
	Retry resilience.Policy
	// Breakers, when set, short-circuits calls to archives whose
	// (endpoint, operation) circuit is open and records every outcome; nil
	// disables circuit breaking.
	Breakers *resilience.Registry
	// PageSize, when positive, fetches every cone and SIA response in pages
	// of at most PageSize rows (the MAXREC/OFFSET paging protocol), keeping
	// each archive response — and the archives' own table builds — bounded
	// at survey scale. Pages are merged client-side in the services' global
	// result order, so catalogs, reports and science output stay
	// byte-identical to the unpaged path. Zero keeps the classic
	// one-response-per-query protocol.
	PageSize int
	// Priority is the fabric scheduling class the portal stamps on every
	// compute submission (higher classes run first and, on a
	// preemption-enabled fabric, may checkpoint-preempt lower ones). Zero is
	// the default class. The HTML UI accepts a per-request ?priority=
	// override on /analyze and /start.
	Priority int
	// MaxParallelQueries bounds how many archive calls (cone searches, SIA
	// image searches, the cutout query) one portal operation issues
	// concurrently. The archives are independent services, so the fan-out
	// hides their latencies behind each other; results are always merged in
	// configuration order, so tables, degradation records and science output
	// are identical to a serial build. Default 4; 1 restores the fully
	// sequential portal.
	MaxParallelQueries int
	// Now is the clock behind the phase timings and the poll deadline.
	// The default is the wall clock — the portal is the human-facing
	// client, so real elapsed time is its observable — but tests and
	// replay harnesses inject a fake to make timing-dependent behaviour
	// (poll timeouts) deterministic.
	Now func() time.Time
	// Sleep paces status polling; default time.Sleep, injectable for the
	// same reason as Now.
	Sleep func(time.Duration)
}

// Degradation records one archive the portal proceeded without: a secondary
// catalog or image service that stayed down through the retry policy, whose
// columns or images are simply missing from the results page.
type Degradation struct {
	Service string // endpoint URL
	Op      string // "cone" or "sia"
	Err     string
}

// ErrCircuitOpen marks calls refused because the endpoint's circuit is open.
var ErrCircuitOpen = errors.New("portal: circuit open")

// callService runs one archive call under the retry policy and the circuit
// breaker for (endpoint, op).
func (p *Portal) callService(endpoint, op string, fn func() error) error {
	if !p.cfg.Breakers.Allow(endpoint, op) {
		return fmt.Errorf("%w: %s %s", ErrCircuitOpen, op, endpoint)
	}
	res := resilience.Retry(p.cfg.Retry, func() error {
		err := fn()
		p.cfg.Breakers.Record(endpoint, op, err)
		return err
	})
	return res.Err
}

// Portal is the application portal.
type Portal struct {
	cfg Config

	mu         sync.Mutex
	imageCache map[string][]services.SIARecord
	jobs       map[string]*jobRecord
	nextJob    int
}

// Errors returned by portal operations.
var (
	ErrUnknownCluster = errors.New("portal: unknown cluster")
	ErrNoCatalog      = errors.New("portal: catalog services returned no galaxies")
	ErrComputeFailed  = errors.New("portal: compute service failed")
	ErrTimeout        = errors.New("portal: compute service timed out")
)

// New builds a portal.
func New(cfg Config) (*Portal, error) {
	if len(cfg.Clusters) == 0 {
		return nil, errors.New("portal: need at least one cluster")
	}
	if len(cfg.ConeServices) == 0 || cfg.CutoutService == "" || cfg.ComputeService == "" {
		return nil, errors.New("portal: cone, cutout and compute services are required")
	}
	if cfg.HTTPClient == nil {
		// All archive traffic shares one pooled client, so sequential cone,
		// SIA and cutout calls to the same host reuse keep-alive connections.
		cfg.HTTPClient = httpclient.Shared()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 60 * time.Second
	}
	if cfg.MaxParallelQueries <= 0 {
		cfg.MaxParallelQueries = 4
	}
	if cfg.Now == nil {
		//nvolint:ignore noclock the portal is the wall-clock boundary: it reports real elapsed time to a human and is never replayed
		cfg.Now = time.Now
	}
	if cfg.Sleep == nil {
		//nvolint:ignore noclock default poll pacing for the live portal; tests inject a no-op Sleep
		cfg.Sleep = time.Sleep
	}
	return &Portal{cfg: cfg, imageCache: map[string][]services.SIARecord{}}, nil
}

// Clusters lists the selectable clusters, sorted by name.
func (p *Portal) Clusters() []ClusterEntry {
	out := append([]ClusterEntry(nil), p.cfg.Clusters...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Cluster resolves a cluster by name.
func (p *Portal) Cluster(name string) (ClusterEntry, error) {
	for _, c := range p.cfg.Clusters {
		if c.Name == name {
			if c.SearchRadiusDeg <= 0 {
				c.SearchRadiusDeg = 0.5
			}
			return c, nil
		}
	}
	return ClusterEntry{}, fmt.Errorf("%w: %q", ErrUnknownCluster, name)
}

// FindImages queries every SIA service for large-scale images of the
// cluster and returns the combined references ("links to these images are
// returned to the user"). With CacheImageSearch set, repeated searches for
// the same cluster are served from memory. Image services that stay down
// through the retry policy degrade silently; use FindImagesReport to see
// which were skipped.
func (p *Portal) FindImages(cluster string) ([]services.SIARecord, error) {
	recs, _, err := p.FindImagesReport(cluster)
	return recs, err
}

// FindImagesReport is FindImages plus the list of image services the search
// proceeded without. Partial results are cached only when no service
// degraded, so a recovered archive's images reappear on the next search.
func (p *Portal) FindImagesReport(cluster string) ([]services.SIARecord, []Degradation, error) {
	entry, err := p.Cluster(cluster)
	if err != nil {
		return nil, nil, err
	}
	if p.cfg.CacheImageSearch {
		p.mu.Lock()
		cached, hit := p.imageCache[cluster]
		p.mu.Unlock()
		if hit {
			return append([]services.SIARecord(nil), cached...), nil, nil
		}
	}
	// Query every image archive concurrently (they are independent
	// services), then merge in configuration order so the combined record
	// list and the degradation report are identical to a serial search.
	results := make([][]services.SIARecord, len(p.cfg.SIAServices))
	errs := make([]error, len(p.cfg.SIAServices))
	workpool.Run(p.cfg.MaxParallelQueries, len(p.cfg.SIAServices), func(i int) {
		base := p.cfg.SIAServices[i]
		errs[i] = p.callService(base, "sia", func() error {
			var e error
			results[i], e = services.SIAQueryPaged(p.cfg.HTTPClient, base, entry.Center, 2*entry.SearchRadiusDeg, p.cfg.PageSize)
			return e
		})
	})
	var all []services.SIARecord
	var degraded []Degradation
	for i, base := range p.cfg.SIAServices {
		if errs[i] != nil {
			degraded = append(degraded, Degradation{Service: base, Op: "sia", Err: errs[i].Error()})
			continue
		}
		all = append(all, results[i]...)
	}
	if p.cfg.CacheImageSearch && len(degraded) == 0 {
		p.mu.Lock()
		p.imageCache[cluster] = append([]services.SIARecord(nil), all...)
		p.mu.Unlock()
	}
	return all, degraded, nil
}

// BuildCatalog constructs the cluster's galaxy catalog: the primary cone
// search supplies the base table; additional cone services contribute
// columns via a left join on id; the cutout service's references are merged
// in as the acref column. Secondary catalogs that stay down degrade
// silently; use BuildCatalogReport to see which were skipped.
func (p *Portal) BuildCatalog(cluster string) (*votable.Table, error) {
	tab, _, err := p.BuildCatalogReport(cluster)
	return tab, err
}

// BuildCatalogReport is BuildCatalog plus the list of secondary catalog
// services the build proceeded without. The primary cone search and the
// cutout service are load-bearing — without the base table or the image
// references there is nothing to compute — so their failure (after the
// retry policy) fails the build; secondary cone services only narrow the
// joined columns.
func (p *Portal) BuildCatalogReport(cluster string) (*votable.Table, []Degradation, error) {
	entry, err := p.Cluster(cluster)
	if err != nil {
		return nil, nil, err
	}
	// Every archive query of the build — the primary cone search, the
	// secondary cone searches, and the cutout SIA query — targets an
	// independent service, so all of them fan out together; the joins below
	// run in configuration order, which keeps the catalog columns and the
	// degradation report byte-identical to a serial build.
	nCone := len(p.cfg.ConeServices)
	tables := make([]*votable.Table, nCone)
	errs := make([]error, nCone+1)
	var cuts []services.SIARecord
	workpool.Run(p.cfg.MaxParallelQueries, nCone+1, func(i int) {
		if i < nCone {
			svc := p.cfg.ConeServices[i]
			errs[i] = p.callService(svc, "cone", func() error {
				var e error
				tables[i], e = services.ConeSearchPaged(p.cfg.HTTPClient, svc, entry.Center, entry.SearchRadiusDeg, p.cfg.PageSize)
				return e
			})
			return
		}
		errs[nCone] = p.callService(p.cfg.CutoutService, "sia", func() error {
			var e error
			cuts, e = services.SIAQueryPaged(p.cfg.HTTPClient, p.cfg.CutoutService, entry.Center, 2*entry.SearchRadiusDeg, p.cfg.PageSize)
			return e
		})
	})

	// The primary cone search is load-bearing; its failure fails the build.
	primary := p.cfg.ConeServices[0]
	if errs[0] != nil {
		return nil, nil, fmt.Errorf("portal: cone %s: %w", primary, errs[0])
	}
	base := tables[0]
	if base.NumRows() == 0 {
		return nil, nil, fmt.Errorf("%w: %s", ErrNoCatalog, cluster)
	}
	base.Name = cluster

	// Fold in additional catalogs (the "integrating heterogeneous tabular
	// data" requirement): left join keeps galaxies missing from the
	// secondary catalogs.
	var degraded []Degradation
	for i, svc := range p.cfg.ConeServices[1:] {
		if err := errs[i+1]; err != nil {
			degraded = append(degraded, Degradation{Service: svc, Op: "cone", Err: err.Error()})
			continue
		}
		joined, err := votable.LeftJoin(base, tables[i+1], "id", "id")
		if err != nil {
			return nil, nil, err
		}
		joined.Name = cluster
		base = joined
	}

	// Attach cutout references. The SIA cutout protocol returns one row
	// per galaxy; merge its acref by galaxy id (the title column carries
	// the id in our cutout service). Like the primary cone, the cutout
	// service is load-bearing.
	if err := errs[nCone]; err != nil {
		return nil, nil, fmt.Errorf("portal: cutout SIA: %w", err)
	}
	acrefOf := make(map[string]string, len(cuts))
	for _, c := range cuts {
		acrefOf[c.Title] = c.AcRef
	}
	base.AddColumn(votable.Field{Name: "acref", Datatype: votable.TypeChar,
		UCD: "VOX:Image_AccessReference"}, func(i int) string {
		return p.absoluteCutoutURL(acrefOf[base.Cell(i, "id")])
	})
	return base, degraded, nil
}

// absoluteCutoutURL resolves a relative acref against the cutout service.
func (p *Portal) absoluteCutoutURL(acref string) string {
	if acref == "" {
		return ""
	}
	if len(acref) > 0 && acref[0] == '/' {
		// Strip the /siacut path to the service root.
		base := p.cfg.CutoutService
		for i := len(base) - 1; i >= 0; i-- {
			if base[i] == '/' {
				return base[:i] + acref
			}
		}
	}
	return acref
}
