package portal

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/votable"
	"repro/internal/wcs"
)

// trackingHandler wraps an archive handler and records the peak number of
// requests in flight at once.
type trackingHandler struct {
	inner http.Handler
	cur   int32
	peak  int32
	mu    sync.Mutex
}

func (h *trackingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c := atomic.AddInt32(&h.cur, 1)
	h.mu.Lock()
	if c > h.peak {
		h.peak = c
	}
	h.mu.Unlock()
	time.Sleep(20 * time.Millisecond) // widen the overlap window
	h.inner.ServeHTTP(w, r)
	atomic.AddInt32(&h.cur, -1)
}

// fanOutServers stands up three mirrors of one deterministic archive behind
// a single tracking handler, so any number of portals can query the same
// endpoints while sharing one peak-concurrency counter.
func fanOutServers(t *testing.T) ([]string, *skysim.Cluster, *trackingHandler) {
	t.Helper()
	cl := skysim.Generate(skysim.Spec{
		Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.023,
		NumGalaxies: 10, Seed: 21,
	})
	arch := services.NewArchive("mast", cl)
	th := &trackingHandler{inner: arch.Handler()}
	var urls []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(th)
		t.Cleanup(srv.Close)
		urls = append(urls, srv.URL)
	}
	return urls, cl, th
}

func fanOutPortal(t *testing.T, urls []string, cl *skysim.Cluster, parallel int) *Portal {
	t.Helper()
	p, err := New(Config{
		Clusters: []ClusterEntry{{
			Name: "COMA", Center: cl.Center, Redshift: cl.Redshift,
			SearchRadiusDeg: 8*cl.CoreRadiusDeg + 0.01,
		}},
		ConeServices:       []string{urls[0] + "/cone", urls[1] + "/cone", urls[2] + "/cone"},
		SIAServices:        []string{urls[0] + "/sia", urls[1] + "/sia", urls[2] + "/sia"},
		CutoutService:      urls[0] + "/siacut",
		ComputeService:     "http://unused.invalid",
		HTTPClient:         &http.Client{},
		MaxParallelQueries: parallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestArchiveQueriesOverlap verifies the fan-out actually issues archive
// calls concurrently when MaxParallelQueries allows it.
func TestArchiveQueriesOverlap(t *testing.T) {
	urls, cl, th := fanOutServers(t)
	p := fanOutPortal(t, urls, cl, 4)
	if _, _, err := p.BuildCatalogReport("COMA"); err != nil {
		t.Fatal(err)
	}
	if th.peak < 2 {
		t.Errorf("peak concurrent archive requests = %d, want >= 2", th.peak)
	}

	urls2, cl2, th2 := fanOutServers(t)
	pSerial := fanOutPortal(t, urls2, cl2, 1)
	if _, _, err := pSerial.BuildCatalogReport("COMA"); err != nil {
		t.Fatal(err)
	}
	if th2.peak != 1 {
		t.Errorf("serial portal issued %d concurrent requests, want 1", th2.peak)
	}
}

// TestParallelCatalogMatchesSerial requires the concurrent fan-out to merge
// in configuration order: the built catalog must be byte-identical to the
// serial build's.
func TestParallelCatalogMatchesSerial(t *testing.T) {
	render := func(tab *votable.Table) []byte {
		var buf bytes.Buffer
		if err := votable.WriteTable(&buf, tab); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	urls, cl, _ := fanOutServers(t)
	pSerial := fanOutPortal(t, urls, cl, 1)
	serialTab, serialDeg, err := pSerial.BuildCatalogReport("COMA")
	if err != nil {
		t.Fatal(err)
	}
	serialImgs, _, err := pSerial.FindImagesReport("COMA")
	if err != nil {
		t.Fatal(err)
	}

	pPar := fanOutPortal(t, urls, cl, 8)
	parTab, parDeg, err := pPar.BuildCatalogReport("COMA")
	if err != nil {
		t.Fatal(err)
	}
	parImgs, _, err := pPar.FindImagesReport("COMA")
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(render(serialTab), render(parTab)) {
		t.Error("parallel catalog differs from serial catalog")
	}
	if len(serialDeg) != 0 || len(parDeg) != 0 {
		t.Errorf("unexpected degradations: serial %v, parallel %v", serialDeg, parDeg)
	}
	if len(serialImgs) != len(parImgs) {
		t.Fatalf("image counts: serial %d, parallel %d", len(serialImgs), len(parImgs))
	}
	for i := range serialImgs {
		if serialImgs[i] != parImgs[i] {
			t.Errorf("image %d: serial %+v != parallel %+v", i, serialImgs[i], parImgs[i])
		}
	}
}
