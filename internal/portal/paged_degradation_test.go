package portal

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/votable"
)

// flakyPages proxies an archive endpoint but fails every request from the
// k-th onwards — an archive that dies in the middle of a MAXREC/OFFSET
// pagination, after k-1 pages have already been served.
type flakyPages struct {
	target string
	client *http.Client
	failAt int
	calls  int32
}

func (f *flakyPages) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if n := atomic.AddInt32(&f.calls, 1); f.failAt > 0 && int(n) >= f.failAt {
		http.Error(w, "archive offline mid-pagination", http.StatusInternalServerError)
		return
	}
	resp, err := f.client.Get(f.target + "?" + req.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		return
	}
}

// TestPagedCatalogMidPaginationDegradation kills the secondary catalog
// archive at page k of its paged cone search, for every k: the build must
// complete anyway, report exactly that archive as degraded, and the partial
// merge (primary catalog only, no secondary columns) must be byte-identical
// to a build that never configured the secondary — deterministically, on
// repeat builds too.
func TestPagedCatalogMidPaginationDegradation(t *testing.T) {
	const galaxies, pageSize = 25, 7 // 4 pages per cone query
	var baseCfg Config
	newFixture(t, galaxies, func(c *Config) {
		c.PageSize = pageSize
		baseCfg = *c
	})
	if len(baseCfg.ConeServices) != 2 {
		t.Fatalf("fixture has %d cone services, want primary+secondary", len(baseCfg.ConeServices))
	}

	// The partial-merge baseline: the same portal with the secondary archive
	// never configured. Same underlying services, so the catalog bytes
	// (including absolute cutout URLs) are directly comparable.
	partialCfg := baseCfg
	partialCfg.ConeServices = baseCfg.ConeServices[:1]
	partial, err := New(partialCfg)
	if err != nil {
		t.Fatal(err)
	}
	partialCat, deg, err := partial.BuildCatalogReport("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if len(deg) != 0 {
		t.Fatalf("baseline build degraded: %+v", deg)
	}
	var want bytes.Buffer
	if err := votable.WriteTable(&want, partialCat); err != nil {
		t.Fatal(err)
	}

	// Full build through a healthy proxy as the control: no degradation,
	// secondary columns present (differs from the partial baseline).
	healthy := httptest.NewServer(&flakyPages{
		target: baseCfg.ConeServices[1], client: baseCfg.HTTPClient,
	})
	t.Cleanup(healthy.Close)
	fullCfg := baseCfg
	fullCfg.ConeServices = []string{baseCfg.ConeServices[0], healthy.URL}
	full, err := New(fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	fullCat, deg, err := full.BuildCatalogReport("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if len(deg) != 0 {
		t.Fatalf("healthy proxied build degraded: %+v", deg)
	}
	var fullBytes bytes.Buffer
	if err := votable.WriteTable(&fullBytes, fullCat); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fullBytes.Bytes(), want.Bytes()) {
		t.Fatal("secondary archive adds nothing; the degradation sweep would test nothing")
	}

	for k := 1; k <= 4; k++ {
		// Two independent builds at the same failure page: the degradation
		// decision and the partial merge must repeat byte-identically.
		var prev []byte
		for attempt := 0; attempt < 2; attempt++ {
			flaky := httptest.NewServer(&flakyPages{
				target: baseCfg.ConeServices[1], client: baseCfg.HTTPClient, failAt: k,
			})
			cfg := baseCfg
			cfg.ConeServices = []string{baseCfg.ConeServices[0], flaky.URL}
			p, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cat, deg, err := p.BuildCatalogReport("COMA")
			flaky.Close()
			if err != nil {
				t.Fatalf("k=%d: build failed outright, want graceful degradation: %v", k, err)
			}
			if len(deg) != 1 || deg[0].Op != "cone" || deg[0].Service != flaky.URL {
				t.Fatalf("k=%d: degradation report = %+v, want one cone entry for the flaky archive", k, deg)
			}
			var got bytes.Buffer
			if err := votable.WriteTable(&got, cat); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("k=%d attempt %d: partial merge differs from the secondary-free baseline", k, attempt)
			}
			if attempt > 0 && !bytes.Equal(got.Bytes(), prev) {
				t.Errorf("k=%d: repeat build not deterministic", k)
			}
			prev = got.Bytes()
		}
	}
}
