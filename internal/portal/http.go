package portal

import (
	"html/template"
	"net/http"
	"strconv"

	"repro/internal/votable"
)

// Handler serves the portal's HTML user interface:
//
//	GET /                  cluster selection list
//	GET /cluster?name=X    large-scale image links + analyze button
//	GET /analyze?name=X    runs the full analysis synchronously (as the
//	                       paper's portal did) and renders the result table
var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>NVO Galaxy Morphology Portal</title></head><body>
<h1>NVO Galaxy Morphology Portal</h1>
{{if .Clusters}}
<h2>Select a galaxy cluster</h2><ul>
{{range .Clusters}}<li><a href="/cluster?name={{.Name}}">{{.Name}}</a> (z={{printf "%.3f" .Redshift}})</li>{{end}}
</ul>{{end}}
{{if .Cluster}}
<h2>Cluster {{.Cluster}}</h2>
{{if .Images}}<h3>Large-scale images</h3><ul>
{{range .Images}}<li><a href="{{.AcRef}}">{{.Title}}</a></li>{{end}}
</ul>{{end}}
{{if .ShowAnalyze}}<p><a href="/analyze?name={{.Cluster}}">Begin morphology analysis</a>
(synchronous, as the SC'03 prototype) or
<a href="/start?name={{.Cluster}}">run asynchronously</a></p>
<p><small>defaults: archive paging {{if .PageSize}}{{.PageSize}} rows/page{{else}}off{{end}}
 | submission priority {{.Priority}} (override with ?priority=N on /analyze or /start)</small></p>{{end}}
{{end}}
{{if .Job}}
<h2>Analysis job {{.Job.ID}} — {{.Job.Cluster}}</h2>
<p>state: <b>{{.Job.State}}</b> — {{.Job.Message}}</p>
{{if .Job.JobsTotal}}<p>Grid progress: {{.Job.JobsDone}}/{{.Job.JobsTotal}} workflow nodes</p>{{end}}
{{if eq (printf "%s" .Job.State) "running"}}<p><a href="/job?id={{.Job.ID}}">refresh</a></p>{{end}}
{{end}}
{{if .Result}}
<h3>Analysis complete: {{.Result.Table.NumRows}} galaxies</h3>
<p>image search {{.Result.ImageSearch}} | catalog {{.Result.CatalogTime}} | compute {{.Result.ComputeTime}}</p>
<table border="1"><tr>{{range .Columns}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
{{if .Error}}<p style="color:red">{{.Error}}</p>{{end}}
</body></html>`))

type pageData struct {
	Clusters    []ClusterEntry
	Cluster     string
	Images      []imageRef
	ShowAnalyze bool
	Result      *AnalysisResult
	Job         *JobSnapshot
	Columns     []string
	Rows        [][]string
	Error       string
	// Operative portal defaults, shown on the cluster page so the
	// survey-scale and multi-tenant knobs are visible without reading code.
	PageSize int
	Priority int
}

// Handler returns the portal's HTTP UI.
func (p *Portal) Handler() http.Handler {
	mux := http.NewServeMux()

	render := func(w http.ResponseWriter, data pageData) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_ = pageTmpl.Execute(w, data)
	}

	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		render(w, pageData{Clusters: p.Clusters()})
	})

	mux.HandleFunc("/cluster", func(w http.ResponseWriter, req *http.Request) {
		name := req.URL.Query().Get("name")
		images, err := p.FindImages(name)
		if err != nil {
			render(w, pageData{Error: err.Error()})
			return
		}
		var refs []imageRef
		for _, im := range images {
			refs = append(refs, imageRef{Title: im.Title, AcRef: im.AcRef})
		}
		render(w, pageData{Cluster: name, Images: refs, ShowAnalyze: true,
			PageSize: p.cfg.PageSize, Priority: p.cfg.Priority})
	})

	// priorityOf resolves the fabric scheduling class for one UI request:
	// the ?priority= query parameter when present, else the portal default.
	priorityOf := func(req *http.Request) int {
		if v := req.URL.Query().Get("priority"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				return n
			}
		}
		return p.cfg.Priority
	}

	mux.HandleFunc("/analyze", func(w http.ResponseWriter, req *http.Request) {
		name := req.URL.Query().Get("name")
		res, err := p.AnalyzeAt(name, priorityOf(req))
		if err != nil {
			render(w, pageData{Cluster: name, Error: err.Error()})
			return
		}
		cols, rows := tablePreview(res.Table, 25)
		render(w, pageData{Cluster: name, Result: res, Columns: cols, Rows: rows})
	})

	mux.HandleFunc("/start", func(w http.ResponseWriter, req *http.Request) {
		name := req.URL.Query().Get("name")
		id, err := p.StartAnalysisAt(name, priorityOf(req))
		if err != nil {
			render(w, pageData{Cluster: name, Error: err.Error()})
			return
		}
		http.Redirect(w, req, "/job?id="+id, http.StatusSeeOther)
	})

	mux.HandleFunc("/job", func(w http.ResponseWriter, req *http.Request) {
		snap, err := p.JobStatus(req.URL.Query().Get("id"))
		if err != nil {
			render(w, pageData{Error: err.Error()})
			return
		}
		data := pageData{Cluster: snap.Cluster, Job: &snap}
		if snap.State == JobCompleted && snap.Result != nil {
			data.Result = snap.Result
			data.Columns, data.Rows = tablePreview(snap.Result.Table, 25)
		}
		render(w, data)
	})

	return mux
}

// tablePreview extracts up to maxRows rows for HTML display.
func tablePreview(t *votable.Table, maxRows int) (cols []string, rows [][]string) {
	for _, f := range t.Fields {
		cols = append(cols, f.Name)
	}
	n := t.NumRows()
	if n > maxRows {
		n = maxRows
	}
	for i := 0; i < n; i++ {
		rows = append(rows, append([]string(nil), t.Rows[i]...))
	}
	return cols, rows
}
