package votable

// Parity suite for the streaming codec: the pre-streaming struct-marshal
// implementations of Read/Write are frozen below (legacyRead/legacyWrite)
// and every test asserts the streaming reimplementation agrees with them —
// byte-identical output, deep-equal documents, and matching accept/reject
// decisions on malformed input.

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// legacyWrite is the struct-marshal Write as it existed before the
// streaming encoder, kept verbatim as the byte-identity oracle.
func legacyWrite(w io.Writer, doc *Document) error {
	x := xmlVOTable{Version: "1.1", Description: doc.Description}
	for _, res := range doc.Resources {
		xr := xmlResource{Name: res.Name}
		for _, t := range res.Tables {
			xt := xmlTable{Name: t.Name, Description: t.Description}
			for _, p := range t.Params {
				xt.Params = append(xt.Params, xmlParam(p))
			}
			for _, f := range t.Fields {
				xt.Fields = append(xt.Fields, xmlField(f))
			}
			xt.Data = &xmlData{}
			for _, r := range t.Rows {
				xt.Data.TableData.Rows = append(xt.Data.TableData.Rows, xmlTR{Cells: r})
			}
			xr.Tables = append(xr.Tables, xt)
		}
		x.Resources = append(x.Resources, xr)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(x); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// legacyRead is the whole-document struct-unmarshal Read, the semantic
// oracle for the streaming decoder.
func legacyRead(r io.Reader) (*Document, error) {
	var x xmlVOTable
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&x); err != nil {
		return nil, fmt.Errorf("votable: parse: %w", err)
	}
	doc := &Document{Description: strings.TrimSpace(x.Description)}
	for _, xr := range x.Resources {
		res := Resource{Name: xr.Name}
		for _, xt := range xr.Tables {
			t := Table{Name: xt.Name, Description: strings.TrimSpace(xt.Description)}
			for _, p := range xt.Params {
				t.Params = append(t.Params, Param(p))
			}
			for _, f := range xt.Fields {
				t.Fields = append(t.Fields, Field(f))
			}
			if xt.Data != nil {
				for _, tr := range xt.Data.TableData.Rows {
					row := tr.Cells
					for len(row) < len(t.Fields) {
						row = append(row, "")
					}
					if len(row) > len(t.Fields) {
						return nil, fmt.Errorf("%w: table %q row has %d cells for %d fields",
							ErrRaggedRow, t.Name, len(row), len(t.Fields))
					}
					t.Rows = append(t.Rows, row)
				}
			}
			res.Tables = append(res.Tables, t)
		}
		doc.Resources = append(doc.Resources, res)
	}
	return doc, nil
}

func randomDocument(rng *rand.Rand) *Document {
	randStr := func(allowEmpty bool) string {
		alphabet := []rune("abz <>&\"'\n\té\u00a0末0")
		n := rng.Intn(8)
		if !allowEmpty && n == 0 {
			n = 1
		}
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	doc := &Document{}
	if rng.Intn(2) == 0 {
		doc.Description = randStr(false)
	}
	for r := 0; r < rng.Intn(3); r++ {
		res := Resource{}
		if rng.Intn(2) == 0 {
			res.Name = randStr(false)
		}
		for t := 0; t < rng.Intn(3); t++ {
			tab := Table{Name: randStr(true), Description: randStr(true)}
			for p := 0; p < rng.Intn(3); p++ {
				tab.Params = append(tab.Params, Param{
					Name: "p", Datatype: TypeChar, Value: randStr(true),
					Unit: randStr(true), UCD: randStr(true),
				})
			}
			nc := rng.Intn(4)
			for c := 0; c < nc; c++ {
				tab.Fields = append(tab.Fields, Field{
					ID: randStr(true), Name: fmt.Sprintf("c%d", c), Datatype: TypeChar,
					Unit: randStr(true), UCD: randStr(true), Description: randStr(true),
				})
			}
			for r := 0; r < rng.Intn(5); r++ {
				row := make([]string, nc)
				for c := range row {
					row[c] = randStr(true)
				}
				tab.Rows = append(tab.Rows, row)
			}
			res.Tables = append(res.Tables, tab)
		}
		doc.Resources = append(doc.Resources, res)
	}
	return doc
}

// TestStreamingWriteByteIdentical pins the tentpole invariant: the token
// streaming encoder emits exactly the bytes the struct marshaler did, for
// documents spanning empties, escaping, params, field descriptions and
// multi-resource layouts.
func TestStreamingWriteByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		doc := randomDocument(rng)
		var oldBuf, newBuf bytes.Buffer
		if err := legacyWrite(&oldBuf, doc); err != nil {
			t.Fatal(err)
		}
		if err := Write(&newBuf, doc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(oldBuf.Bytes(), newBuf.Bytes()) {
			t.Fatalf("doc %d: streaming write diverged\n--- legacy ---\n%s\n--- streaming ---\n%s",
				i, oldBuf.String(), newBuf.String())
		}
	}
}

// TestStreamingReadMatchesLegacy round-trips random documents and asserts
// the streaming decoder reconstructs exactly what the struct decoder did.
func TestStreamingReadMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		doc := randomDocument(rng)
		var buf bytes.Buffer
		if err := Write(&buf, doc); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		oldDoc, oldErr := legacyRead(bytes.NewReader(raw))
		newDoc, newErr := Read(bytes.NewReader(raw))
		if (oldErr == nil) != (newErr == nil) {
			t.Fatalf("doc %d: error disagreement: legacy=%v streaming=%v", i, oldErr, newErr)
		}
		if oldErr != nil {
			continue
		}
		if !reflect.DeepEqual(oldDoc, newDoc) {
			t.Fatalf("doc %d: decode disagreement\nlegacy:    %#v\nstreaming: %#v", i, oldDoc, newDoc)
		}
	}
}

// checkParity is the shared property: both decoders accept or both reject;
// on accept the documents are deep-equal and re-encode byte-identically.
func checkParity(t *testing.T, raw []byte) {
	t.Helper()
	oldDoc, oldErr := legacyRead(bytes.NewReader(raw))
	newDoc, newErr := Read(bytes.NewReader(raw))
	if (oldErr == nil) != (newErr == nil) {
		t.Fatalf("accept/reject disagreement on %q:\nlegacy=%v\nstreaming=%v", raw, oldErr, newErr)
	}
	if oldErr != nil {
		return
	}
	if !reflect.DeepEqual(oldDoc, newDoc) {
		t.Fatalf("decode disagreement on %q:\nlegacy:    %#v\nstreaming: %#v", raw, oldDoc, newDoc)
	}
	var oldBuf, newBuf bytes.Buffer
	if err := legacyWrite(&oldBuf, oldDoc); err != nil {
		return
	}
	if err := Write(&newBuf, newDoc); err != nil {
		t.Fatalf("streaming write failed where legacy succeeded on %q: %v", raw, err)
	}
	if !bytes.Equal(oldBuf.Bytes(), newBuf.Bytes()) {
		t.Fatalf("re-encode diverged on %q:\n--- legacy ---\n%s\n--- streaming ---\n%s",
			raw, oldBuf.String(), newBuf.String())
	}
}

// FuzzStreamingParity feeds arbitrary bytes to both decoders: same
// accept/reject decision, same document, byte-identical re-encode.
func FuzzStreamingParity(f *testing.F) {
	var buf bytes.Buffer
	doc := randomDocument(rand.New(rand.NewSource(3)))
	_ = Write(&buf, doc)
	f.Add(buf.Bytes())
	f.Add([]byte(`<?xml version="1.0"?><VOTABLE><RESOURCE><TABLE name="t"><FIELD name="a" datatype="char"/><DATA><TABLEDATA><TR><TD>x</TD></TR></TABLEDATA></DATA></TABLE></RESOURCE></VOTABLE>`))
	f.Add([]byte(`<VOTABLE><RESOURCE><TABLE><DATA><TABLEDATA><TR><TD>x</TD><TD>y</TD></TR></TABLEDATA></DATA><FIELD name="late" datatype="char"/></TABLE></RESOURCE></VOTABLE>`))
	f.Add([]byte(`<VOTABLE><DESCRIPTION> two </DESCRIPTION><DESCRIPTION>second</DESCRIPTION><UNKNOWN><TABLE/></UNKNOWN></VOTABLE>`))
	f.Add([]byte(`<NOTVOTABLE/>`))
	f.Add([]byte(`<VOTABLE><RESOURCE><TABLE><DATA><TABLEDATA><TR></TR></TABLEDATA></DATA><DATA><TABLEDATA><TR><TD/></TR></TABLEDATA></DATA></TABLE></RESOURCE></VOTABLE>`))
	f.Add([]byte("this is not xml"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, raw []byte) {
		checkParity(t, raw)
	})
}

// TestStreamingMalformedParity pins the exact error text for the canonical
// malformed-input cases so the streaming decoder can never drift from the
// historical messages.
func TestStreamingMalformedParity(t *testing.T) {
	cases := []string{
		"",
		"this is not xml",
		"<NOTVOTABLE/>",
		"<VOTABLE><RESOURCE><TABLE name=\"t\"><FIELD name=\"a\" datatype=\"char\"/><DATA><TABLEDATA><TR><TD>x</TD><TD>y</TD></TR></TABLEDATA></DATA></TABLE></RESOURCE></VOTABLE>",
		"<VOTABLE><RESOURCE><TABLE><DATA><TABLEDATA><TR><TD>unclosed",
		"<VOTABLE version=\"1.1\"",
	}
	for _, raw := range cases {
		_, oldErr := legacyRead(strings.NewReader(raw))
		_, newErr := Read(strings.NewReader(raw))
		if oldErr == nil || newErr == nil {
			t.Fatalf("case %q: expected both to fail, legacy=%v streaming=%v", raw, oldErr, newErr)
		}
		if oldErr.Error() != newErr.Error() {
			t.Errorf("case %q: error text diverged:\nlegacy:    %v\nstreaming: %v", raw, oldErr, newErr)
		}
	}
	// The wide-row rejection keeps its sentinel.
	wide := "<VOTABLE><RESOURCE><TABLE name=\"t\"><FIELD name=\"a\" datatype=\"char\"/><DATA><TABLEDATA><TR><TD>x</TD><TD>y</TD></TR></TABLEDATA></DATA></TABLE></RESOURCE></VOTABLE>"
	if _, err := Read(strings.NewReader(wide)); !errors.Is(err, ErrRaggedRow) {
		t.Errorf("wide row error = %v, want ErrRaggedRow", err)
	}
}

// TestEncoderStreamsWithoutTableInMemory drives the encoder row by row and
// checks the result against an equivalent in-memory WriteTable.
func TestEncoderStreamsWithoutTableInMemory(t *testing.T) {
	tab := NewTable("stream",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "v", Datatype: TypeDouble, Unit: "deg"},
	)
	tab.Description = "streamed"
	tab.SetParam(Param{Name: "cluster", Datatype: TypeChar, Value: "COMA"})
	for i := 0; i < 100; i++ {
		_ = tab.AppendRow(fmt.Sprintf("G%03d", i), FormatFloat(float64(i)/7))
	}

	var want bytes.Buffer
	if err := WriteTable(&want, tab); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	enc := NewEncoder(&got)
	if err := enc.BeginDocument(""); err != nil {
		t.Fatal(err)
	}
	if err := enc.BeginResource(tab.Name); err != nil {
		t.Fatal(err)
	}
	if err := enc.BeginTable(tab.Meta()); err != nil {
		t.Fatal(err)
	}
	for _, r := range tab.Rows {
		if err := enc.Row(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.EndTable(); err != nil {
		t.Fatal(err)
	}
	if err := enc.EndResource(); err != nil {
		t.Fatal(err)
	}
	if err := enc.End(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("row-by-row encode diverged from WriteTable:\n--- want ---\n%s\n--- got ---\n%s",
			want.String(), got.String())
	}
}

// TestEncoderMisuse checks state tracking: out-of-order calls fail and the
// encoder stays failed.
func TestEncoderMisuse(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.Row([]string{"x"}); err == nil {
		t.Fatal("Row before BeginDocument must fail")
	}
	if err := enc.BeginDocument(""); err == nil {
		t.Fatal("encoder must stay failed after misuse")
	}
}

// TestDecodeRowsNormalization checks the normalized streaming path: short
// rows padded, wide rows rejected with the historical message, metadata
// delivered before the first row.
func TestDecodeRowsNormalization(t *testing.T) {
	raw := `<VOTABLE><RESOURCE><TABLE name="t">
<FIELD name="a" datatype="char"/><FIELD name="b" datatype="char"/>
<DATA><TABLEDATA><TR><TD>x</TD></TR><TR><TD>1</TD><TD>2</TD></TR></TABLEDATA></DATA>
</TABLE></RESOURCE></VOTABLE>`
	var rows [][]string
	var metaAtFirstRow int
	err := DecodeRows(strings.NewReader(raw),
		func(meta *TableMeta) error {
			metaAtFirstRow = len(meta.Fields)
			return nil
		},
		func(meta *TableMeta, cells []string) error {
			rows = append(rows, cells)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if metaAtFirstRow != 2 {
		t.Errorf("fields at announce = %d, want 2", metaAtFirstRow)
	}
	if len(rows) != 2 || rows[0][1] != "" || rows[1][0] != "1" {
		t.Errorf("rows = %v", rows)
	}

	wide := `<VOTABLE><RESOURCE><TABLE name="t"><FIELD name="a" datatype="char"/>
<DATA><TABLEDATA><TR><TD>x</TD><TD>y</TD></TR></TABLEDATA></DATA></TABLE></RESOURCE></VOTABLE>`
	err = DecodeRows(strings.NewReader(wide), nil, nil)
	if !errors.Is(err, ErrRaggedRow) {
		t.Errorf("wide row in DecodeRows = %v, want ErrRaggedRow", err)
	}
}

// TestDecodeCallbackErrorsPassThrough ensures handler errors surface
// verbatim, without the parse wrapping.
func TestDecodeCallbackErrorsPassThrough(t *testing.T) {
	sentinel := errors.New("stop here")
	raw := `<VOTABLE><RESOURCE><TABLE name="t"><DATA><TABLEDATA><TR><TD>x</TD></TR></TABLEDATA></DATA></TABLE></RESOURCE></VOTABLE>`
	err := DecodeDocument(strings.NewReader(raw), &Handler{
		Row: func([]string) error { return sentinel },
	})
	if err != sentinel {
		t.Fatalf("callback error = %v, want sentinel verbatim", err)
	}
}

func BenchmarkStreamingWrite10kRows(b *testing.B) {
	meta := TableMeta{Name: "bench", Fields: []Field{
		{Name: "id", Datatype: TypeChar},
		{Name: "v", Datatype: TypeDouble},
	}}
	row := []string{"G000001", "0.123456"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := NewEncoder(io.Discard)
		_ = enc.BeginDocument("")
		_ = enc.BeginResource("bench")
		_ = enc.BeginTable(meta)
		for r := 0; r < 10000; r++ {
			_ = enc.Row(row)
		}
		_ = enc.EndTable()
		_ = enc.EndResource()
		_ = enc.End()
	}
}

func BenchmarkStreamingRead10kRows(b *testing.B) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	_ = enc.BeginDocument("")
	_ = enc.BeginResource("bench")
	_ = enc.BeginTable(TableMeta{Name: "bench", Fields: []Field{
		{Name: "id", Datatype: TypeChar},
		{Name: "v", Datatype: TypeDouble},
	}})
	for r := 0; r < 10000; r++ {
		_ = enc.Row([]string{"G000001", "0.123456"})
	}
	_ = enc.EndTable()
	_ = enc.EndResource()
	_ = enc.End()
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := DecodeRows(bytes.NewReader(raw), nil, func(_ *TableMeta, cells []string) error {
			n += len(cells)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
