package votable

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func galaxyTable() *Table {
	t := NewTable("galaxies",
		Field{Name: "id", Datatype: TypeChar, UCD: "meta.id"},
		Field{Name: "ra", Datatype: TypeDouble, Unit: "deg", UCD: "pos.eq.ra"},
		Field{Name: "dec", Datatype: TypeDouble, Unit: "deg", UCD: "pos.eq.dec"},
		Field{Name: "mag", Datatype: TypeFloat, Unit: "mag"},
	)
	_ = t.AppendRow("NGP9_F323-0927589", "194.95", "27.98", "16.2")
	_ = t.AppendRow("NGP9_F323-0927590", "194.97", "27.91", "17.8")
	_ = t.AppendRow("NGP9_F323-0927591", "195.01", "28.02", "15.1")
	return t
}

func TestAppendRowWidth(t *testing.T) {
	tab := galaxyTable()
	if err := tab.AppendRow("only", "three", "cells"); err == nil {
		t.Error("short row must be rejected")
	}
	if err := tab.AppendRow("a", "b", "c", "d", "e"); err == nil {
		t.Error("long row must be rejected")
	}
}

func TestColumnIndexCaseInsensitive(t *testing.T) {
	tab := galaxyTable()
	if tab.ColumnIndex("RA") != 1 || tab.ColumnIndex("Dec") != 2 {
		t.Error("column lookup must be case-insensitive")
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Error("unknown column must return -1")
	}
}

func TestTypedAccessors(t *testing.T) {
	tab := galaxyTable()
	if v, ok := tab.Float(0, "ra"); !ok || v != 194.95 {
		t.Errorf("Float = %v,%v", v, ok)
	}
	if _, ok := tab.Float(0, "id"); ok {
		t.Error("non-numeric cell must not parse as float")
	}
	if _, ok := tab.Float(99, "ra"); ok {
		t.Error("out-of-range row must not parse")
	}
	tab.AddColumn(Field{Name: "n", Datatype: TypeInt}, func(i int) string { return fmt.Sprint(i * 10) })
	if v, ok := tab.Int(2, "n"); !ok || v != 20 {
		t.Errorf("Int = %v,%v", v, ok)
	}
	tab.AddColumn(Field{Name: "valid", Datatype: TypeBoolean}, func(int) string { return "T" })
	if v, ok := tab.Bool(0, "valid"); !ok || !v {
		t.Errorf("Bool = %v,%v", v, ok)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tab := galaxyTable()
	tab.Description = "cluster members"
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<VOTABLE") || !strings.Contains(buf.String(), "TABLEDATA") {
		t.Fatalf("output does not look like VOTable:\n%s", buf.String())
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "galaxies" || got.Description != "cluster members" {
		t.Errorf("metadata lost: %q %q", got.Name, got.Description)
	}
	if got.NumRows() != 3 || got.NumCols() != 4 {
		t.Fatalf("shape %dx%d", got.NumRows(), got.NumCols())
	}
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if tab.Rows[i][j] != got.Rows[i][j] {
				t.Errorf("cell (%d,%d): %q != %q", i, j, tab.Rows[i][j], got.Rows[i][j])
			}
		}
	}
	if got.Fields[1].Unit != "deg" || got.Fields[1].UCD != "pos.eq.ra" {
		t.Errorf("field attrs lost: %+v", got.Fields[1])
	}
}

func TestXMLSpecialCharacters(t *testing.T) {
	tab := NewTable("weird", Field{Name: "s", Datatype: TypeChar})
	_ = tab.AppendRow(`<&>"'`)
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0] != `<&>"'` {
		t.Errorf("special chars mangled: %q", got.Rows[0][0])
	}
}

func TestXMLRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		nc := 1 + rng.Intn(5)
		nr := rng.Intn(20)
		tab := &Table{Name: "t"}
		for c := 0; c < nc; c++ {
			tab.Fields = append(tab.Fields, Field{Name: fmt.Sprintf("c%d", c), Datatype: TypeChar})
		}
		for r := 0; r < nr; r++ {
			row := make([]string, nc)
			for c := range row {
				row[c] = fmt.Sprintf("v%d", rng.Intn(1000))
			}
			tab.Rows = append(tab.Rows, row)
		}
		var buf bytes.Buffer
		if err := WriteTable(&buf, tab); err != nil {
			return false
		}
		got, err := ReadTable(&buf)
		if err != nil || got.NumRows() != nr || got.NumCols() != nc {
			return false
		}
		for r := 0; r < nr; r++ {
			for c := 0; c < nc; c++ {
				if got.Rows[r][c] != tab.Rows[r][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadShortRowsPadded(t *testing.T) {
	xmlDoc := `<?xml version="1.0"?>
<VOTABLE><RESOURCE><TABLE name="t">
<FIELD name="a" datatype="char"/><FIELD name="b" datatype="char"/>
<DATA><TABLEDATA><TR><TD>x</TD></TR></TABLEDATA></DATA>
</TABLE></RESOURCE></VOTABLE>`
	tab, err := ReadTable(strings.NewReader(xmlDoc))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][1] != "" {
		t.Errorf("missing trailing cell should pad empty, got %q", tab.Rows[0][1])
	}
}

func TestReadRejectsWideRows(t *testing.T) {
	xmlDoc := `<?xml version="1.0"?>
<VOTABLE><RESOURCE><TABLE name="t">
<FIELD name="a" datatype="char"/>
<DATA><TABLEDATA><TR><TD>x</TD><TD>y</TD></TR></TABLEDATA></DATA>
</TABLE></RESOURCE></VOTABLE>`
	if _, err := ReadTable(strings.NewReader(xmlDoc)); err == nil {
		t.Error("row wider than fields must fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("this is not xml")); err == nil {
		t.Error("garbage must not parse")
	}
	if _, err := ReadTable(strings.NewReader("<VOTABLE></VOTABLE>")); err == nil {
		t.Error("empty document has no first table")
	}
}

func TestJoin(t *testing.T) {
	a := galaxyTable()
	b := NewTable("morph",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "asymmetry", Datatype: TypeDouble},
	)
	_ = b.AppendRow("NGP9_F323-0927589", "0.31")
	_ = b.AppendRow("NGP9_F323-0927591", "0.05")
	_ = b.AppendRow("UNMATCHED", "0.99")

	j, err := Join(a, b, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 2 {
		t.Fatalf("inner join rows = %d, want 2", j.NumRows())
	}
	if j.NumCols() != 5 {
		t.Fatalf("join cols = %d, want 5", j.NumCols())
	}
	if v, ok := j.Float(0, "asymmetry"); !ok || v != 0.31 {
		t.Errorf("joined asymmetry = %v,%v", v, ok)
	}
}

func TestJoinNameCollision(t *testing.T) {
	a := galaxyTable()
	b := NewTable("other",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "mag", Datatype: TypeFloat}, // collides with a.mag
	)
	_ = b.AppendRow("NGP9_F323-0927589", "99")
	j, err := Join(a, b, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if j.ColumnIndex("other_mag") < 0 {
		t.Errorf("colliding column should be renamed; fields: %+v", j.Fields)
	}
}

func TestJoinMissingKey(t *testing.T) {
	a := galaxyTable()
	if _, err := Join(a, a, "nope", "id"); err == nil {
		t.Error("unknown key column must fail")
	}
	if _, err := Join(a, a, "id", "nope"); err == nil {
		t.Error("unknown key column must fail")
	}
}

func TestLeftJoin(t *testing.T) {
	a := galaxyTable()
	b := NewTable("morph",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "asym", Datatype: TypeDouble},
	)
	_ = b.AppendRow("NGP9_F323-0927589", "0.31")
	j, err := LeftJoin(a, b, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if j.NumRows() != 3 {
		t.Fatalf("left join rows = %d, want 3", j.NumRows())
	}
	if got := j.Cell(1, "asym"); got != "" {
		t.Errorf("unmatched row asym = %q, want empty", got)
	}
	if got := j.Cell(0, "asym"); got != "0.31" {
		t.Errorf("matched row asym = %q", got)
	}
}

func TestMergeColumns(t *testing.T) {
	cat := galaxyTable()
	res := NewTable("results",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "asym", Datatype: TypeDouble},
		Field{Name: "conc", Datatype: TypeDouble},
	)
	_ = res.AppendRow("NGP9_F323-0927590", "0.4", "2.9")
	_ = res.AppendRow("NGP9_F323-0927591", "0.1", "4.1")

	if err := MergeColumns(cat, res, "id", "id", "asym", "conc"); err != nil {
		t.Fatal(err)
	}
	if cat.NumCols() != 6 {
		t.Fatalf("cols after merge = %d", cat.NumCols())
	}
	if got := cat.Cell(0, "asym"); got != "" {
		t.Errorf("row without result should stay empty, got %q", got)
	}
	if got := cat.Cell(1, "asym"); got != "0.4" {
		t.Errorf("merged asym = %q", got)
	}
	if got := cat.Cell(2, "conc"); got != "4.1" {
		t.Errorf("merged conc = %q", got)
	}
	// Merging again overwrites in place without adding columns.
	if err := MergeColumns(cat, res, "id", "id", "asym"); err != nil {
		t.Fatal(err)
	}
	if cat.NumCols() != 6 {
		t.Errorf("re-merge added columns: %d", cat.NumCols())
	}
}

func TestMergeColumnsDuplicateKey(t *testing.T) {
	cat := galaxyTable()
	res := NewTable("results",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "asym", Datatype: TypeDouble},
	)
	_ = res.AppendRow("X", "1")
	_ = res.AppendRow("X", "2")
	if err := MergeColumns(cat, res, "id", "id", "asym"); err == nil {
		t.Error("duplicate source keys must fail")
	}
}

func TestFilterAndSort(t *testing.T) {
	tab := galaxyTable()
	bright := tab.Filter(func(i int) bool {
		v, _ := tab.Float(i, "mag")
		return v < 17
	})
	if bright.NumRows() != 2 {
		t.Fatalf("filter rows = %d", bright.NumRows())
	}
	if err := bright.SortByFloat("mag"); err != nil {
		t.Fatal(err)
	}
	if bright.Cell(0, "mag") != "15.1" {
		t.Errorf("sort order wrong: %v", bright.Rows)
	}
	if err := bright.SortByFloat("zz"); err == nil {
		t.Error("sorting unknown column must fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tab := galaxyTable()
	c := tab.Clone()
	c.Rows[0][0] = "mutated"
	if tab.Rows[0][0] == "mutated" {
		t.Error("Clone must deep-copy rows")
	}
}

func TestMultiResourceDocument(t *testing.T) {
	doc := &Document{
		Description: "two resources",
		Resources: []Resource{
			{Name: "r1", Tables: []Table{*galaxyTable()}},
			{Name: "r2", Tables: []Table{*NewTable("empty", Field{Name: "x", Datatype: TypeInt})}},
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Resources) != 2 || got.Resources[1].Tables[0].Name != "empty" {
		t.Errorf("resources lost: %+v", got.Resources)
	}
	ft, err := got.FirstTable()
	if err != nil || ft.Name != "galaxies" {
		t.Errorf("FirstTable = %v, %v", ft, err)
	}
}

func benchTable(rows int) *Table {
	t := galaxyTable()
	t.Rows = nil
	for i := 0; i < rows; i++ {
		_ = t.AppendRow(fmt.Sprintf("G%06d", i), "194.95", "27.98", "16.2")
	}
	return t
}

func BenchmarkWrite1000Rows(b *testing.B) {
	tab := benchTable(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteTable(&buf, tab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead1000Rows(b *testing.B) {
	tab := benchTable(1000)
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadTable(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoin1000x1000(b *testing.B) {
	a := benchTable(1000)
	c := NewTable("m", Field{Name: "id", Datatype: TypeChar}, Field{Name: "v", Datatype: TypeDouble})
	for i := 0; i < 1000; i++ {
		_ = c.AppendRow(fmt.Sprintf("G%06d", i), "0.5")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Join(a, c, "id", "id"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	tab := galaxyTable()
	tab.SetParam(Param{Name: "cluster", Datatype: TypeChar, Value: "COMA"})
	tab.SetParam(Param{Name: "sr", Datatype: TypeDouble, Value: "0.5", Unit: "deg", UCD: "pos"})
	// Replacement by name.
	tab.SetParam(Param{Name: "cluster", Datatype: TypeChar, Value: "A2256"})
	if len(tab.Params) != 2 {
		t.Fatalf("params = %d", len(tab.Params))
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, tab); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := got.Param("cluster")
	if !ok || p.Value != "A2256" {
		t.Errorf("cluster param = %+v, %v", p, ok)
	}
	p, ok = got.Param("sr")
	if !ok || p.Unit != "deg" || p.UCD != "pos" {
		t.Errorf("sr param = %+v", p)
	}
	if _, ok := got.Param("ghost"); ok {
		t.Error("missing param must not be found")
	}
}

func TestSetCellAndFormatFloat(t *testing.T) {
	tab := galaxyTable()
	if err := tab.SetCell(1, "mag", "12.3"); err != nil {
		t.Fatal(err)
	}
	if tab.Cell(1, "mag") != "12.3" {
		t.Error("SetCell lost the value")
	}
	if err := tab.SetCell(1, "ghost", "x"); err == nil {
		t.Error("unknown column must fail")
	}
	if err := tab.SetCell(99, "mag", "x"); err == nil {
		t.Error("row out of range must fail")
	}
	if FormatFloat(0.5) != "0.5" || FormatFloat(1e21) != "1e+21" {
		t.Errorf("FormatFloat: %q %q", FormatFloat(0.5), FormatFloat(1e21))
	}
}

func TestBoolParsing(t *testing.T) {
	tab := NewTable("b", Field{Name: "v", Datatype: TypeBoolean})
	for in, want := range map[string]bool{
		"T": true, "true": true, "1": true,
		"F": false, "false": false, "0": false,
	} {
		tab.Rows = [][]string{{in}}
		got, ok := tab.Bool(0, "v")
		if !ok || got != want {
			t.Errorf("Bool(%q) = %v, %v", in, got, ok)
		}
	}
	tab.Rows = [][]string{{"maybe"}}
	if _, ok := tab.Bool(0, "v"); ok {
		t.Error("unparsable logical must not be ok")
	}
}
