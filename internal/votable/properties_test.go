package votable

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randTablePair builds two tables over a random shared key space.
func randTablePair(rng *rand.Rand) (*Table, *Table) {
	nKeys := 1 + rng.Intn(10)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("K%d", i)
	}
	a := NewTable("a",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "va", Datatype: TypeInt},
	)
	b := NewTable("b",
		Field{Name: "id", Datatype: TypeChar},
		Field{Name: "vb", Datatype: TypeInt},
	)
	for i := 0; i < rng.Intn(20); i++ {
		_ = a.AppendRow(keys[rng.Intn(nKeys)], fmt.Sprint(i))
	}
	for i := 0; i < rng.Intn(20); i++ {
		_ = b.AppendRow(keys[rng.Intn(nKeys)], fmt.Sprint(100+i))
	}
	return a, b
}

// TestJoinProperties checks, for random inputs:
//   - |inner join| <= |a| * |b|;
//   - |left join| >= |a| rows when b may not match, and every a-row appears
//     at least once;
//   - inner join rows are a subset of left join rows (by key pairing count).
func TestJoinProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	f := func() bool {
		a, b := randTablePair(rng)
		inner, err := Join(a, b, "id", "id")
		if err != nil {
			return false
		}
		left, err := LeftJoin(a, b, "id", "id")
		if err != nil {
			return false
		}
		if inner.NumRows() > a.NumRows()*max(b.NumRows(), 1) {
			return false
		}
		if left.NumRows() < a.NumRows() {
			return false
		}
		// Count matches per key in b.
		matches := map[string]int{}
		for _, r := range b.Rows {
			matches[r[0]]++
		}
		wantInner, wantLeft := 0, 0
		for _, r := range a.Rows {
			m := matches[r[0]]
			wantInner += m
			if m == 0 {
				wantLeft++
			} else {
				wantLeft += m
			}
		}
		return inner.NumRows() == wantInner && left.NumRows() == wantLeft
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMergeIdempotent: merging the same columns twice leaves the table
// identical to merging once.
func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	f := func() bool {
		dst, src := randTablePair(rng)
		// Deduplicate src keys (MergeColumns requires unique keys).
		seen := map[string]bool{}
		uniq := src.Filter(func(i int) bool {
			k := src.Rows[i][0]
			if seen[k] {
				return false
			}
			seen[k] = true
			return true
		})
		if err := MergeColumns(dst, uniq, "id", "id", "vb"); err != nil {
			return false
		}
		snapshot := dst.Clone()
		if err := MergeColumns(dst, uniq, "id", "id", "vb"); err != nil {
			return false
		}
		if dst.NumCols() != snapshot.NumCols() || dst.NumRows() != snapshot.NumRows() {
			return false
		}
		for i := range dst.Rows {
			for j := range dst.Rows[i] {
				if dst.Rows[i][j] != snapshot.Rows[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFilterPartition: a filter and its complement partition the rows.
func TestFilterPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	f := func() bool {
		a, _ := randTablePair(rng)
		keep := func(i int) bool { v, _ := a.Int(i, "va"); return v%2 == 0 }
		yes := a.Filter(keep)
		no := a.Filter(func(i int) bool { return !keep(i) })
		return yes.NumRows()+no.NumRows() == a.NumRows()
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
