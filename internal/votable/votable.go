// Package votable implements the VOTable XML format for astronomical tables
// (the International Virtual Observatory interchange format the paper uses to
// move every catalog between portal, data services and compute service), plus
// the generic table manipulations — join on an arbitrary column, column
// merge — that the paper identifies as missing general-purpose NVO services
// (§4.2, §5).
//
// The model is deliberately simple: a document holds named RESOURCE elements,
// each holding TABLEs; a TABLE has typed FIELD declarations and TABLEDATA
// rows of string cells with typed accessors. That matches the 2002-era
// VOTable 1.0 documents the prototype exchanged.
package votable

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Datatype names from the VOTable specification that this package understands.
const (
	TypeBoolean = "boolean"
	TypeInt     = "int"
	TypeLong    = "long"
	TypeFloat   = "float"
	TypeDouble  = "double"
	TypeChar    = "char"
)

// Field describes one column of a table.
type Field struct {
	ID          string
	Name        string
	Datatype    string
	Unit        string
	UCD         string // Unified Content Descriptor, e.g. "pos.eq.ra"
	Description string
}

// Param is a VOTable PARAM: a named scalar attached to a table (the way the
// prototype carried per-table metadata such as the cluster name or the
// search position).
type Param struct {
	Name     string
	Datatype string
	Value    string
	Unit     string
	UCD      string
}

// Table is an in-memory VOTable TABLE: typed field declarations, table-level
// PARAMs, plus rows of string-encoded cells.
type Table struct {
	Name        string
	Description string
	Params      []Param
	Fields      []Field
	Rows        [][]string
}

// SetParam adds or replaces a PARAM by name.
func (t *Table) SetParam(p Param) {
	for i := range t.Params {
		if t.Params[i].Name == p.Name {
			t.Params[i] = p
			return
		}
	}
	t.Params = append(t.Params, p)
}

// Param returns the PARAM with the given name.
func (t *Table) Param(name string) (Param, bool) {
	for _, p := range t.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// Document is a whole VOTable file.
type Document struct {
	Description string
	Resources   []Resource
}

// Resource is a VOTable RESOURCE grouping of tables.
type Resource struct {
	Name   string
	Tables []Table
}

// Errors returned by table operations.
var (
	ErrNoSuchColumn = errors.New("votable: no such column")
	ErrNoSuchTable  = errors.New("votable: no such table")
	ErrRaggedRow    = errors.New("votable: row width does not match fields")
	ErrKeyCollision = errors.New("votable: duplicate key")
)

// NewTable returns an empty table with the given name and fields.
func NewTable(name string, fields ...Field) *Table {
	return &Table{Name: name, Fields: fields}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of declared fields.
func (t *Table) NumCols() int { return len(t.Fields) }

// ColumnIndex returns the index of the field whose Name or ID equals name
// (case-insensitive), or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, f := range t.Fields {
		if strings.EqualFold(f.Name, name) || (f.ID != "" && strings.EqualFold(f.ID, name)) {
			return i
		}
	}
	return -1
}

// AppendRow adds a row, which must have exactly one cell per field.
func (t *Table) AppendRow(cells ...string) error {
	if len(cells) != len(t.Fields) {
		return fmt.Errorf("%w: got %d cells, want %d", ErrRaggedRow, len(cells), len(t.Fields))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// Cell returns the raw string cell at (row, column name); empty string if out
// of range or unknown column.
func (t *Table) Cell(row int, col string) string {
	c := t.ColumnIndex(col)
	if c < 0 || row < 0 || row >= len(t.Rows) {
		return ""
	}
	return t.Rows[row][c]
}

// SetCell overwrites the cell at (row, column name).
func (t *Table) SetCell(row int, col, value string) error {
	c := t.ColumnIndex(col)
	if c < 0 {
		return fmt.Errorf("%w: %q", ErrNoSuchColumn, col)
	}
	if row < 0 || row >= len(t.Rows) {
		return fmt.Errorf("votable: row %d out of range", row)
	}
	t.Rows[row][c] = value
	return nil
}

// Float returns the cell parsed as float64. NaN-like and empty cells yield
// (0, false).
func (t *Table) Float(row int, col string) (float64, bool) {
	s := strings.TrimSpace(t.Cell(row, col))
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Int returns the cell parsed as int64.
func (t *Table) Int(row int, col string) (int64, bool) {
	s := strings.TrimSpace(t.Cell(row, col))
	if s == "" {
		return 0, false
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Bool returns the cell parsed as a VOTable logical ("T"/"F"/"true"/"false").
func (t *Table) Bool(row int, col string) (bool, bool) {
	switch strings.TrimSpace(strings.ToUpper(t.Cell(row, col))) {
	case "T", "TRUE", "1":
		return true, true
	case "F", "FALSE", "0":
		return false, true
	}
	return false, false
}

// AddColumn appends a field and gives every existing row the value produced
// by fill (which may be nil for empty cells).
func (t *Table) AddColumn(f Field, fill func(row int) string) {
	t.Fields = append(t.Fields, f)
	for i := range t.Rows {
		v := ""
		if fill != nil {
			v = fill(i)
		}
		t.Rows[i] = append(t.Rows[i], v)
	}
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	out := &Table{Name: t.Name, Description: t.Description}
	out.Fields = append([]Field(nil), t.Fields...)
	out.Rows = make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		out.Rows[i] = append([]string(nil), r...)
	}
	return out
}

// Filter returns a new table containing the rows for which keep returns true.
func (t *Table) Filter(keep func(row int) bool) *Table {
	out := &Table{Name: t.Name, Description: t.Description, Fields: append([]Field(nil), t.Fields...)}
	for i := range t.Rows {
		if keep(i) {
			out.Rows = append(out.Rows, append([]string(nil), t.Rows[i]...))
		}
	}
	return out
}

// SortByFloat sorts rows ascending by the named numeric column; rows whose
// cell does not parse sort last.
func (t *Table) SortByFloat(col string) error {
	c := t.ColumnIndex(col)
	if c < 0 {
		return fmt.Errorf("%w: %q", ErrNoSuchColumn, col)
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		vi, erri := strconv.ParseFloat(strings.TrimSpace(t.Rows[i][c]), 64)
		vj, errj := strconv.ParseFloat(strings.TrimSpace(t.Rows[j][c]), 64)
		badI, badJ := erri != nil, errj != nil
		if badI {
			return false
		}
		if badJ {
			return true
		}
		return vi < vj
	})
	return nil
}

// Join performs an inner equi-join of a and b on string equality of the key
// columns keyA and keyB. The result carries all of a's fields followed by all
// of b's fields except its key. This is the "join two VOTables on an
// arbitrary column" general service the paper calls for.
func Join(a, b *Table, keyA, keyB string) (*Table, error) {
	ka := a.ColumnIndex(keyA)
	if ka < 0 {
		return nil, fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, keyA, a.Name)
	}
	kb := b.ColumnIndex(keyB)
	if kb < 0 {
		return nil, fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, keyB, b.Name)
	}

	out := &Table{Name: a.Name + "_join_" + b.Name}
	out.Fields = append(out.Fields, a.Fields...)
	for i, f := range b.Fields {
		if i == kb {
			continue
		}
		// Disambiguate clashing names the way SQL engines do.
		if a.ColumnIndex(f.Name) >= 0 {
			f.Name = b.Name + "_" + f.Name
		}
		out.Fields = append(out.Fields, f)
	}

	// Hash join: index b by key.
	idx := make(map[string][]int, len(b.Rows))
	for i, r := range b.Rows {
		idx[r[kb]] = append(idx[r[kb]], i)
	}
	for _, ra := range a.Rows {
		for _, bi := range idx[ra[ka]] {
			row := make([]string, 0, len(out.Fields))
			row = append(row, ra...)
			for j, cell := range b.Rows[bi] {
				if j == kb {
					continue
				}
				row = append(row, cell)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// LeftJoin is Join but rows of a without a match in b are kept with empty
// cells for b's columns.
func LeftJoin(a, b *Table, keyA, keyB string) (*Table, error) {
	ka := a.ColumnIndex(keyA)
	if ka < 0 {
		return nil, fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, keyA, a.Name)
	}
	kb := b.ColumnIndex(keyB)
	if kb < 0 {
		return nil, fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, keyB, b.Name)
	}
	out := &Table{Name: a.Name + "_join_" + b.Name}
	out.Fields = append(out.Fields, a.Fields...)
	for i, f := range b.Fields {
		if i == kb {
			continue
		}
		if a.ColumnIndex(f.Name) >= 0 {
			f.Name = b.Name + "_" + f.Name
		}
		out.Fields = append(out.Fields, f)
	}
	idx := make(map[string][]int, len(b.Rows))
	for i, r := range b.Rows {
		idx[r[kb]] = append(idx[r[kb]], i)
	}
	nbCols := len(b.Fields) - 1
	for _, ra := range a.Rows {
		matches := idx[ra[ka]]
		if len(matches) == 0 {
			row := make([]string, 0, len(out.Fields))
			row = append(row, ra...)
			for j := 0; j < nbCols; j++ {
				row = append(row, "")
			}
			out.Rows = append(out.Rows, row)
			continue
		}
		for _, bi := range matches {
			row := make([]string, 0, len(out.Fields))
			row = append(row, ra...)
			for j, cell := range b.Rows[bi] {
				if j == kb {
					continue
				}
				row = append(row, cell)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

// MergeColumns copies the named columns of src into dst for rows whose key
// column matches, adding the columns to dst if absent. Keys in src must be
// unique. This is the operation the portal performs when it folds the
// computed morphology values back into the galaxy catalog (§4.2).
func MergeColumns(dst, src *Table, keyDst, keySrc string, cols ...string) error {
	kd := dst.ColumnIndex(keyDst)
	if kd < 0 {
		return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, keyDst, dst.Name)
	}
	ks := src.ColumnIndex(keySrc)
	if ks < 0 {
		return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, keySrc, src.Name)
	}
	srcIdx := make(map[string]int, len(src.Rows))
	for i, r := range src.Rows {
		if _, dup := srcIdx[r[ks]]; dup {
			return fmt.Errorf("%w: %q", ErrKeyCollision, r[ks])
		}
		srcIdx[r[ks]] = i
	}
	for _, col := range cols {
		sc := src.ColumnIndex(col)
		if sc < 0 {
			return fmt.Errorf("%w: %q in %q", ErrNoSuchColumn, col, src.Name)
		}
		dc := dst.ColumnIndex(col)
		if dc < 0 {
			dst.AddColumn(src.Fields[sc], nil)
			dc = len(dst.Fields) - 1
		}
		for i := range dst.Rows {
			if si, ok := srcIdx[dst.Rows[i][kd]]; ok {
				dst.Rows[i][dc] = src.Rows[si][sc]
			}
		}
	}
	return nil
}

// --- XML wire format -------------------------------------------------------

// xmlVOTable mirrors the VOTable 1.0/1.1 document structure.
type xmlVOTable struct {
	XMLName     xml.Name      `xml:"VOTABLE"`
	Version     string        `xml:"version,attr,omitempty"`
	Description string        `xml:"DESCRIPTION,omitempty"`
	Resources   []xmlResource `xml:"RESOURCE"`
}

type xmlResource struct {
	Name   string     `xml:"name,attr,omitempty"`
	Tables []xmlTable `xml:"TABLE"`
}

type xmlTable struct {
	Name        string     `xml:"name,attr,omitempty"`
	Description string     `xml:"DESCRIPTION,omitempty"`
	Params      []xmlParam `xml:"PARAM"`
	Fields      []xmlField `xml:"FIELD"`
	Data        *xmlData   `xml:"DATA"`
}

type xmlParam struct {
	Name     string `xml:"name,attr"`
	Datatype string `xml:"datatype,attr"`
	Value    string `xml:"value,attr"`
	Unit     string `xml:"unit,attr,omitempty"`
	UCD      string `xml:"ucd,attr,omitempty"`
}

type xmlField struct {
	ID          string `xml:"ID,attr,omitempty"`
	Name        string `xml:"name,attr"`
	Datatype    string `xml:"datatype,attr"`
	Unit        string `xml:"unit,attr,omitempty"`
	UCD         string `xml:"ucd,attr,omitempty"`
	Description string `xml:"DESCRIPTION,omitempty"`
}

type xmlData struct {
	TableData xmlTableData `xml:"TABLEDATA"`
}

type xmlTableData struct {
	Rows []xmlTR `xml:"TR"`
}

type xmlTR struct {
	Cells []string `xml:"TD"`
}

// Write serializes the document as VOTable XML. It streams through Encoder,
// producing bytes identical to the historical struct-marshal path.
func Write(w io.Writer, doc *Document) error {
	enc := NewEncoder(w)
	if err := enc.BeginDocument(doc.Description); err != nil {
		return err
	}
	for ri := range doc.Resources {
		res := &doc.Resources[ri]
		if err := enc.BeginResource(res.Name); err != nil {
			return err
		}
		for ti := range res.Tables {
			if err := enc.EncodeTable(&res.Tables[ti]); err != nil {
				return err
			}
		}
		if err := enc.EndResource(); err != nil {
			return err
		}
	}
	return enc.End()
}

// WriteTable serializes a single table as a one-resource document.
func WriteTable(w io.Writer, t *Table) error {
	return Write(w, &Document{Resources: []Resource{{Name: t.Name, Tables: []Table{*t}}}})
}

// Read parses a VOTable document. It streams through DecodeDocument; row
// normalization (short rows padded, over-wide rows rejected) happens after
// the parse against each table's final field count, preserving the
// historical struct-decode semantics even for documents that declare fields
// after their data.
func Read(r io.Reader) (*Document, error) {
	doc := &Document{}
	var cur *Table
	h := &Handler{
		Description: func(s string) error {
			doc.Description = strings.TrimSpace(s)
			return nil
		},
		StartResource: func(name string) error {
			doc.Resources = append(doc.Resources, Resource{Name: name})
			return nil
		},
		StartTable: func(name string) error {
			res := &doc.Resources[len(doc.Resources)-1]
			res.Tables = append(res.Tables, Table{Name: name})
			cur = &res.Tables[len(res.Tables)-1]
			return nil
		},
		TableDescription: func(s string) error {
			cur.Description = strings.TrimSpace(s)
			return nil
		},
		Param: func(p Param) error {
			cur.Params = append(cur.Params, p)
			return nil
		},
		Field: func(f Field) error {
			cur.Fields = append(cur.Fields, f)
			return nil
		},
		Row: func(cells []string) error {
			cur.Rows = append(cur.Rows, cells)
			return nil
		},
	}
	if err := DecodeDocument(r, h); err != nil {
		return nil, err
	}
	for ri := range doc.Resources {
		for ti := range doc.Resources[ri].Tables {
			t := &doc.Resources[ri].Tables[ti]
			for i, row := range t.Rows {
				row, err := normalizeRow(t.Name, row, len(t.Fields))
				if err != nil {
					return nil, err
				}
				t.Rows[i] = row
			}
		}
	}
	return doc, nil
}

// ReadTable parses a document and returns its first table.
func ReadTable(r io.Reader) (*Table, error) {
	doc, err := Read(r)
	if err != nil {
		return nil, err
	}
	return doc.FirstTable()
}

// FirstTable returns the first table in the document.
func (d *Document) FirstTable() (*Table, error) {
	for i := range d.Resources {
		if len(d.Resources[i].Tables) > 0 {
			return &d.Resources[i].Tables[0], nil
		}
	}
	return nil, ErrNoSuchTable
}

// FormatFloat renders a float for a table cell with full round-trip
// precision.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// AppendFloat appends FormatFloat(v) to dst without the intermediate
// string — the allocation-free form hot-path row encoders use. The bytes
// are identical to FormatFloat's (and to fmt's %g).
//
//nvo:hotpath
func AppendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}
