// Streaming VOTable codec: a row-callback decoder and an incremental
// encoder that never hold a full Table in memory. The in-memory Read/Write
// API in votable.go is reimplemented on top of these; the encoder's printer
// reproduces the struct-marshal output byte for byte (same indentation and
// escaping rules as encoding/xml's indented Encode), so survey-scale
// producers can stream hundreds of thousands of rows while every existing
// byte-identity pin stays in force. The decoder walks xml.Decoder tokens for
// the document skeleton and delegates the leaf subtrees it shares with the
// old wire structs to DecodeElement, keeping malformed-input behavior
// aligned with the historical whole-document unmarshal.
package votable

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// TableMeta is everything about a TABLE except its rows — the unit of
// metadata a streaming producer declares up front and a streaming consumer
// receives before the first row.
type TableMeta struct {
	Name        string
	Description string
	Params      []Param
	Fields      []Field
}

// Meta returns the table's metadata without its rows.
func (t *Table) Meta() TableMeta {
	return TableMeta{Name: t.Name, Description: t.Description, Params: t.Params, Fields: t.Fields}
}

// --- streaming encoder -----------------------------------------------------

// Encoder writes a VOTable document incrementally: document → resources →
// tables → rows. Memory use is bounded by the encoder's internal buffer, not
// by the number of rows written, and the byte stream it produces is
// identical to what the historical struct-marshal Write produced (the
// dedicated printer below reproduces encoding/xml's indented output,
// including its chardata escaping, without paying the reflection cost).
type Encoder struct {
	w     *bufio.Writer
	state encState
	rows  int  // rows written to the open table
	inDoc bool // VOTABLE has child elements so far
	inRes bool // current RESOURCE has child elements so far
	err   error
}

type encState int

const (
	encInit encState = iota
	encDocument
	encResource
	encTable
	encDone
)

// NewEncoder returns an encoder writing to w. Call BeginDocument first and
// End last.
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{w: bufio.NewWriter(w)}
}

func (e *Encoder) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return e.err
}

func (e *Encoder) misuse(op string, want encState) error {
	if e.err != nil {
		return e.err
	}
	if e.state != want {
		return e.fail(fmt.Errorf("votable: encoder: %s in wrong state", op))
	}
	return nil
}

// Escape sequences matching encoding/xml's escapeText with newline escaping
// on — the variant the struct marshaler applies to both attribute values and
// element character data.
const (
	escQuot = "&#34;"
	escApos = "&#39;"
	escAmp  = "&amp;"
	escLT   = "&lt;"
	escGT   = "&gt;"
	escTab  = "&#x9;"
	escNL   = "&#xA;"
	escCR   = "&#xD;"
	escFFFD = "�"
)

func inXMLCharacterRange(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}

func (e *Encoder) escape(s string) {
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRuneInString(s[i:])
		i += width
		var esc string
		switch r {
		case '"':
			esc = escQuot
		case '\'':
			esc = escApos
		case '&':
			esc = escAmp
		case '<':
			esc = escLT
		case '>':
			esc = escGT
		case '\t':
			esc = escTab
		case '\n':
			esc = escNL
		case '\r':
			esc = escCR
		default:
			if !inXMLCharacterRange(r) || (r == utf8.RuneError && width == 1) {
				esc = escFFFD
				break
			}
			continue
		}
		e.str(s[last : i-width])
		e.str(esc)
		last = i
	}
	e.str(s[last:])
}

func (e *Encoder) str(s string) {
	if e.err != nil {
		return
	}
	if _, err := e.w.WriteString(s); err != nil {
		e.err = err
	}
}

const indentUnit = "  "

// line starts a new output line at the given element depth.
func (e *Encoder) line(depth int) {
	e.str("\n")
	for i := 0; i < depth; i++ {
		e.str(indentUnit)
	}
}

func (e *Encoder) attr(name, value string) {
	e.str(" ")
	e.str(name)
	e.str(`="`)
	e.escape(value)
	e.str(`"`)
}

// textElement emits <name>text</name> inline, matching how the struct
// marshaler prints chardata-only elements.
func (e *Encoder) textElement(name, text string) {
	e.str("<")
	e.str(name)
	e.str(">")
	e.escape(text)
	e.str("</")
	e.str(name)
	e.str(">")
}

// BeginDocument writes the XML header and opens the VOTABLE element. An
// empty description is omitted, mirroring the omitempty wire tag.
func (e *Encoder) BeginDocument(description string) error {
	if err := e.misuse("BeginDocument", encInit); err != nil {
		return err
	}
	e.str(xml.Header)
	e.str(`<VOTABLE version="1.1">`)
	if description != "" {
		e.inDoc = true
		e.line(1)
		e.textElement("DESCRIPTION", description)
	}
	e.state = encDocument
	return e.err
}

// BeginResource opens a RESOURCE element.
func (e *Encoder) BeginResource(name string) error {
	if err := e.misuse("BeginResource", encDocument); err != nil {
		return err
	}
	e.inDoc = true
	e.inRes = false
	e.line(1)
	e.str("<RESOURCE")
	if name != "" {
		e.attr("name", name)
	}
	e.str(">")
	e.state = encResource
	return e.err
}

// BeginTable opens a TABLE element and writes its metadata (description,
// PARAMs, FIELDs) plus the opening DATA/TABLEDATA tags; rows follow via Row.
func (e *Encoder) BeginTable(meta TableMeta) error {
	if err := e.misuse("BeginTable", encResource); err != nil {
		return err
	}
	e.inRes = true
	e.line(2)
	e.str("<TABLE")
	if meta.Name != "" {
		e.attr("name", meta.Name)
	}
	e.str(">")
	if meta.Description != "" {
		e.line(3)
		e.textElement("DESCRIPTION", meta.Description)
	}
	for _, p := range meta.Params {
		e.line(3)
		e.str("<PARAM")
		// name, datatype and value are not omitempty on the wire struct.
		e.attr("name", p.Name)
		e.attr("datatype", p.Datatype)
		e.attr("value", p.Value)
		if p.Unit != "" {
			e.attr("unit", p.Unit)
		}
		if p.UCD != "" {
			e.attr("ucd", p.UCD)
		}
		e.str("></PARAM>")
	}
	for _, f := range meta.Fields {
		e.line(3)
		e.str("<FIELD")
		if f.ID != "" {
			e.attr("ID", f.ID)
		}
		e.attr("name", f.Name)
		e.attr("datatype", f.Datatype)
		if f.Unit != "" {
			e.attr("unit", f.Unit)
		}
		if f.UCD != "" {
			e.attr("ucd", f.UCD)
		}
		e.str(">")
		if f.Description != "" {
			e.line(4)
			e.textElement("DESCRIPTION", f.Description)
			e.line(3)
		}
		e.str("</FIELD>")
	}
	e.line(3)
	e.str("<DATA>")
	e.line(4)
	e.str("<TABLEDATA>")
	e.rows = 0
	e.state = encTable
	return e.err
}

// Row writes one TR with one TD per cell.
func (e *Encoder) Row(cells []string) error {
	if err := e.misuse("Row", encTable); err != nil {
		return err
	}
	e.rows++
	e.line(5)
	e.str("<TR>")
	for _, c := range cells {
		e.line(6)
		e.textElement("TD", c)
	}
	if len(cells) > 0 {
		e.line(5)
	}
	e.str("</TR>")
	return e.err
}

// EndTable closes TABLEDATA, DATA and TABLE.
func (e *Encoder) EndTable() error {
	if err := e.misuse("EndTable", encTable); err != nil {
		return err
	}
	if e.rows > 0 {
		e.line(4)
	}
	e.str("</TABLEDATA>")
	e.line(3)
	e.str("</DATA>")
	e.line(2)
	e.str("</TABLE>")
	e.state = encResource
	return e.err
}

// EncodeTable writes a whole in-memory table as one streaming unit.
func (e *Encoder) EncodeTable(t *Table) error {
	if err := e.BeginTable(t.Meta()); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := e.Row(r); err != nil {
			return err
		}
	}
	return e.EndTable()
}

// EndResource closes the current RESOURCE element.
func (e *Encoder) EndResource() error {
	if err := e.misuse("EndResource", encResource); err != nil {
		return err
	}
	if e.inRes {
		e.line(1)
	}
	e.str("</RESOURCE>")
	e.state = encDocument
	return e.err
}

// End closes the VOTABLE element, flushes the encoder and writes the
// trailing newline Write always emitted.
func (e *Encoder) End() error {
	if err := e.misuse("End", encDocument); err != nil {
		return err
	}
	if e.inDoc {
		e.line(0)
	}
	e.str("</VOTABLE>")
	e.str("\n")
	if e.err != nil {
		return e.err
	}
	if err := e.w.Flush(); err != nil {
		return e.fail(err)
	}
	e.state = encDone
	return nil
}

// --- streaming decoder -----------------------------------------------------

// Handler receives decode events in document order. Any callback may be nil;
// a non-nil callback returning an error aborts the decode and that error is
// returned verbatim (decode errors from the XML layer are wrapped in
// "votable: parse:" like Read always did).
//
// Rows are delivered exactly as written — not padded or width-checked —
// because field declarations may legally appear after the data in a document;
// consumers that want normalized rows use DecodeRows or Read.
type Handler struct {
	Description      func(text string) error
	StartResource    func(name string) error
	EndResource      func() error
	StartTable       func(name string) error
	TableDescription func(text string) error
	Param            func(p Param) error
	Field            func(f Field) error
	Row              func(cells []string) error
	EndTable         func() error
}

func parseErr(err error) error {
	return fmt.Errorf("votable: parse: %w", err)
}

// callbackError marks an error raised by a handler callback so it can pass
// through the decoder without the parse wrapping.
type callbackError struct{ err error }

func (c callbackError) Error() string { return c.err.Error() }

// call invokes a handler callback, tagging its error for unwrapped return.
func call(err error) error {
	if err != nil {
		return callbackError{err}
	}
	return nil
}

// DecodeDocument streams a VOTable document through h. It consumes exactly
// one top-level element (trailing bytes are left unread, matching the
// in-memory Read), skips unknown elements, and mirrors the old
// struct-unmarshal semantics for every subtree it does understand.
func DecodeDocument(r io.Reader, h *Handler) error {
	dec := xml.NewDecoder(r)
	err := decodeRoot(dec, h)
	if cb, ok := err.(callbackError); ok {
		return cb.err
	}
	if err != nil {
		return parseErr(err)
	}
	return nil
}

func decodeRoot(dec *xml.Decoder, h *Handler) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if se.Name.Local != "VOTABLE" {
			// Same error type and text the struct decoder produces.
			return xml.UnmarshalError("expected element type <VOTABLE> but have <" + se.Name.Local + ">")
		}
		return decodeVOTable(dec, h)
	}
}

// lastAttr returns the value of the last attribute with the given local
// name, matching the overwrite-on-repeat behavior of struct unmarshal.
func lastAttr(se xml.StartElement, name string) string {
	v := ""
	for _, a := range se.Attr {
		if a.Name.Local == name {
			v = a.Value
		}
	}
	return v
}

func decodeVOTable(dec *xml.Decoder, h *Handler) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "DESCRIPTION":
				var s string
				if err := dec.DecodeElement(&s, &t); err != nil {
					return err
				}
				if h.Description != nil {
					if err := call(h.Description(s)); err != nil {
						return err
					}
				}
			case "RESOURCE":
				if h.StartResource != nil {
					if err := call(h.StartResource(lastAttr(t, "name"))); err != nil {
						return err
					}
				}
				if err := decodeResource(dec, h); err != nil {
					return err
				}
				if h.EndResource != nil {
					if err := call(h.EndResource()); err != nil {
						return err
					}
				}
			default:
				if err := dec.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func decodeResource(dec *xml.Decoder, h *Handler) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "TABLE" {
				if err := dec.Skip(); err != nil {
					return err
				}
				continue
			}
			if h.StartTable != nil {
				if err := call(h.StartTable(lastAttr(t, "name"))); err != nil {
					return err
				}
			}
			if err := decodeTable(dec, h); err != nil {
				return err
			}
			if h.EndTable != nil {
				if err := call(h.EndTable()); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func decodeTable(dec *xml.Decoder, h *Handler) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			switch t.Name.Local {
			case "DESCRIPTION":
				var s string
				if err := dec.DecodeElement(&s, &t); err != nil {
					return err
				}
				if h.TableDescription != nil {
					if err := call(h.TableDescription(s)); err != nil {
						return err
					}
				}
			case "PARAM":
				var xp xmlParam
				if err := dec.DecodeElement(&xp, &t); err != nil {
					return err
				}
				if h.Param != nil {
					if err := call(h.Param(Param(xp))); err != nil {
						return err
					}
				}
			case "FIELD":
				var xf xmlField
				if err := dec.DecodeElement(&xf, &t); err != nil {
					return err
				}
				if h.Field != nil {
					if err := call(h.Field(Field(xf))); err != nil {
						return err
					}
				}
			case "DATA":
				if err := decodeData(dec, h); err != nil {
					return err
				}
			default:
				if err := dec.Skip(); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func decodeData(dec *xml.Decoder, h *Handler) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "TABLEDATA" {
				if err := dec.Skip(); err != nil {
					return err
				}
				continue
			}
			if err := decodeTableData(dec, h); err != nil {
				return err
			}
		case xml.EndElement:
			return nil
		}
	}
}

func decodeTableData(dec *xml.Decoder, h *Handler) error {
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "TR" {
				if err := dec.Skip(); err != nil {
					return err
				}
				continue
			}
			cells, err := decodeTR(dec)
			if err != nil {
				return err
			}
			if h.Row != nil {
				if err := call(h.Row(cells)); err != nil {
					return err
				}
			}
		case xml.EndElement:
			return nil
		}
	}
}

func decodeTR(dec *xml.Decoder) ([]string, error) {
	var cells []string
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "TD" {
				if err := dec.Skip(); err != nil {
					return nil, err
				}
				continue
			}
			var s string
			if err := dec.DecodeElement(&s, &t); err != nil {
				return nil, err
			}
			cells = append(cells, s)
		case xml.EndElement:
			return cells, nil
		}
	}
}

// --- normalized row streaming ---------------------------------------------

// DecodeRows streams the data rows of every table in a document. Rows are
// normalized against the fields declared so far: short rows are padded with
// empty cells and over-wide rows fail with ErrRaggedRow, exactly as Read
// does. startTable fires once per table before its first row (and before
// endTable for empty tables); meta accumulates params/fields as they are
// declared. Either callback may be nil.
func DecodeRows(r io.Reader, startTable func(meta *TableMeta) error, row func(meta *TableMeta, cells []string) error) error {
	var meta *TableMeta
	announced := false
	announce := func() error {
		if announced || meta == nil {
			return nil
		}
		announced = true
		if startTable == nil {
			return nil
		}
		return startTable(meta)
	}
	h := &Handler{
		StartTable: func(name string) error {
			meta = &TableMeta{Name: name}
			announced = false
			return nil
		},
		TableDescription: func(s string) error {
			meta.Description = strings.TrimSpace(s)
			return nil
		},
		Param: func(p Param) error {
			meta.Params = append(meta.Params, p)
			return nil
		},
		Field: func(f Field) error {
			meta.Fields = append(meta.Fields, f)
			return nil
		},
		Row: func(cells []string) error {
			if err := announce(); err != nil {
				return err
			}
			cells, err := normalizeRow(meta.Name, cells, len(meta.Fields))
			if err != nil {
				return err
			}
			if row == nil {
				return nil
			}
			return row(meta, cells)
		},
		EndTable: func() error {
			return announce()
		},
	}
	return DecodeDocument(r, h)
}

func normalizeRow(table string, cells []string, width int) ([]string, error) {
	// Tolerate short rows (trailing empty TDs omitted).
	for len(cells) < width {
		cells = append(cells, "")
	}
	if len(cells) > width {
		return nil, fmt.Errorf("%w: table %q row has %d cells for %d fields",
			ErrRaggedRow, table, len(cells), width)
	}
	return cells, nil
}
