// Package resilience supplies the fault-handling policies the grid stack
// runs under: retry with exponential backoff and deterministic jitter,
// per-operation backoff budgets, and a circuit breaker per (site, operation)
// pair. The injector in internal/faults creates the failures; this package
// is how the system survives them — the DAGMan-retry / rescue-DAG behaviour
// of the paper's §4, generalized into reusable policy.
//
// All delays are model time: Retry reports the backoff it accrued but does
// not sleep unless the policy installs a Sleep function, keeping the
// discrete-event executors deterministic and tests fast.
package resilience

import (
	"errors"
	"time"

	"repro/internal/faults"
	"repro/internal/gridftp"
)

// Class is the coarse disposition of a grid-operation error — what the caller
// should do about it, not what went wrong.
type Class int

// Error classes, ordered from "give up" to "try smarter".
const (
	// ClassFatal errors do not improve with retries against any replica:
	// validation failures, missing files, programming errors.
	ClassFatal Class = iota
	// ClassTransient errors (timeouts, transient faults, site outages) are
	// worth retrying against the SAME replica after backoff.
	ClassTransient
	// ClassAlternateReplica errors mean this replica is damaged at rest
	// (checksum mismatch): retrying it is futile, but another replica of the
	// same LFN — or re-deriving the file from provenance — can succeed.
	ClassAlternateReplica
)

// String labels the class.
func (c Class) String() string {
	switch c {
	case ClassFatal:
		return "fatal"
	case ClassTransient:
		return "transient"
	case ClassAlternateReplica:
		return "alternate-replica"
	default:
		return "Class(?)"
	}
}

// Classify maps an error to its disposition. Checksum mismatches are NOT
// transient — the damage is at rest and survives any number of retries — so
// they route to alternate-replica recovery, distinct from the injected
// transient/timeout/site-down faults that heal with time.
func Classify(err error) Class {
	if err == nil {
		return ClassFatal // nothing to recover from; callers should not ask
	}
	if errors.Is(err, gridftp.ErrChecksum) {
		return ClassAlternateReplica
	}
	if f, ok := faults.As(err); ok {
		switch f.Kind {
		case faults.KindCorruption:
			return ClassAlternateReplica
		case faults.KindTransient, faults.KindTimeout, faults.KindSiteDown:
			return ClassTransient
		}
	}
	return ClassFatal
}

// Retryable reports whether a retry loop (same replica, after backoff) can
// help — the Policy.Retryable adapter for grid-operation errors. Note that
// alternate-replica errors return false here: the RIGHT retry is against a
// different replica, which plain retry loops cannot do.
func Retryable(err error) bool { return Classify(err) == ClassTransient }

// Policy is a retry policy: up to MaxAttempts tries with exponential
// backoff, deterministic jitter, and a total backoff budget.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values < 1 default to 3.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step (default 10s).
	MaxDelay time.Duration
	// Multiplier grows the backoff each attempt (default 2).
	Multiplier float64
	// JitterFrac in (0,1] spreads each delay by ±JitterFrac/2 of itself,
	// derived deterministically from Seed and the attempt number.
	// 0 defaults to 0.5 (the "equal jitter" family); negative disables
	// jitter entirely.
	JitterFrac float64
	// Budget bounds the cumulative backoff across all attempts; once
	// exceeded, Retry stops even with attempts remaining (0 = unbounded).
	// This is the per-operation deadline: a flaky call cannot consume more
	// than Budget of model time in waits.
	Budget time.Duration
	// Seed drives the jitter stream; two policies with the same seed
	// produce identical delay sequences.
	Seed int64
	// Retryable classifies errors; nil retries everything.
	Retryable func(error) bool
	// Sleep, when set, is called with each backoff delay (wall-clock
	// integration); nil records model time only.
	Sleep func(time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.JitterFrac == 0 || p.JitterFrac > 1 {
		p.JitterFrac = 0.5
	}
	return p
}

// Delay returns the backoff before attempt+1 (attempt is 1-based: Delay(1)
// precedes the second try). The jitter is a deterministic hash of
// (Seed, attempt), so the same policy replays the same schedule.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.JitterFrac > 0 {
		// splitmix64 over (Seed, attempt): cheap, stateless, deterministic.
		u := uint64(p.Seed)*0x9E3779B97F4A7C15 + uint64(attempt)*0xBF58476D1CE4E5B9
		u ^= u >> 30
		u *= 0x94D049BB133111EB
		u ^= u >> 31
		frac := float64(u%1e6) / 1e6 // [0,1)
		d *= 1 - p.JitterFrac/2 + p.JitterFrac*frac
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// retryable applies the classifier (nil = retry everything).
func (p Policy) retryable(err error) bool {
	if p.Retryable == nil {
		return true
	}
	return p.Retryable(err)
}

// Result reports what a Retry run did.
type Result struct {
	Attempts int           // tries performed
	Backoff  time.Duration // cumulative model-time backoff
	Err      error         // final error (nil on success)
}

// ErrBudgetExhausted marks a retry loop stopped by its backoff budget.
var ErrBudgetExhausted = errors.New("resilience: retry backoff budget exhausted")

// Retry runs op under the policy. It returns after the first success, after
// MaxAttempts failures, on a non-retryable error, or once the backoff
// budget is spent (the final error is then joined with ErrBudgetExhausted).
func Retry(p Policy, op func() error) Result {
	p = p.withDefaults()
	var res Result
	for {
		res.Attempts++
		err := op()
		if err == nil {
			res.Err = nil
			return res
		}
		res.Err = err
		if res.Attempts >= p.MaxAttempts || !p.retryable(err) {
			return res
		}
		d := p.Delay(res.Attempts)
		if p.Budget > 0 && res.Backoff+d > p.Budget {
			res.Err = errors.Join(ErrBudgetExhausted, err)
			return res
		}
		res.Backoff += d
		if p.Sleep != nil {
			p.Sleep(d)
		}
	}
}

// DAGManPolicy adapts the policy to dagman.Options.RetryPolicy's shape: a
// node that failed its attempt-th try is resubmitted while attempts remain
// and the error classifies as retryable.
func (p Policy) DAGManPolicy() func(node string, attempt int, err error) bool {
	p = p.withDefaults()
	return func(node string, attempt int, err error) bool {
		return attempt < p.MaxAttempts && p.retryable(err)
	}
}
