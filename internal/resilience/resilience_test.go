package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/gridftp"
)

func TestRetrySucceedsAfterTransients(t *testing.T) {
	calls := 0
	res := Retry(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if res.Err != nil || res.Attempts != 3 || calls != 3 {
		t.Fatalf("res = %+v, calls = %d", res, calls)
	}
	if res.Backoff <= 0 {
		t.Error("expected accrued backoff")
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	res := Retry(Policy{MaxAttempts: 4, BaseDelay: time.Millisecond}, func() error { return boom })
	if !errors.Is(res.Err, boom) || res.Attempts != 4 {
		t.Fatalf("res = %+v", res)
	}
}

func TestRetryNonRetryableStopsImmediately(t *testing.T) {
	fatal := errors.New("fatal")
	p := Policy{MaxAttempts: 5, Retryable: func(err error) bool { return !errors.Is(err, fatal) }}
	res := Retry(p, func() error { return fatal })
	if res.Attempts != 1 || !errors.Is(res.Err, fatal) {
		t.Fatalf("res = %+v", res)
	}
}

func TestRetryBudget(t *testing.T) {
	p := Policy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond,
		Multiplier: 1, JitterFrac: -1, Budget: 35 * time.Millisecond}
	boom := errors.New("boom")
	res := Retry(p, func() error { return boom })
	if !errors.Is(res.Err, ErrBudgetExhausted) || !errors.Is(res.Err, boom) {
		t.Fatalf("err = %v", res.Err)
	}
	// 3 delays fit in the budget (30ms); the 4th would exceed it.
	if res.Attempts != 4 || res.Backoff != 30*time.Millisecond {
		t.Errorf("attempts = %d backoff = %v", res.Attempts, res.Backoff)
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 7}
	for attempt := 1; attempt <= 10; attempt++ {
		d1, d2 := p.Delay(attempt), p.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: %v != %v", attempt, d1, d2)
		}
		if d1 <= 0 || d1 > time.Second {
			t.Errorf("attempt %d: delay %v out of bounds", attempt, d1)
		}
	}
	// Growth: later attempts back off longer on average (no jitter).
	nj := Policy{BaseDelay: 10 * time.Millisecond, JitterFrac: -1, Multiplier: 2}
	if nj.Delay(3) != 40*time.Millisecond || nj.Delay(1) != 10*time.Millisecond {
		t.Errorf("backoff growth wrong: %v %v", nj.Delay(1), nj.Delay(3))
	}
	// Different seeds jitter differently for some attempt.
	q := p
	q.Seed = 8
	diff := false
	for a := 1; a <= 10; a++ {
		if p.Delay(a) != q.Delay(a) {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

func TestRetrySleepHook(t *testing.T) {
	var slept time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond,
		Sleep: func(d time.Duration) { slept += d }}
	res := Retry(p, func() error { return errors.New("x") })
	if slept != res.Backoff || slept == 0 {
		t.Errorf("slept %v, backoff %v", slept, res.Backoff)
	}
}

func TestDAGManPolicy(t *testing.T) {
	fatal := errors.New("fatal")
	p := Policy{MaxAttempts: 3, Retryable: func(err error) bool { return !errors.Is(err, fatal) }}
	dec := p.DAGManPolicy()
	if !dec("n", 1, errors.New("t")) || !dec("n", 2, errors.New("t")) {
		t.Error("attempts below the budget must retry")
	}
	if dec("n", 3, errors.New("t")) {
		t.Error("budget exhausted must not retry")
	}
	if dec("n", 1, fatal) {
		t.Error("non-retryable error must not retry")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, CooldownRejects: 2})
	if b.State() != Closed || !b.Allow() {
		t.Fatal("new breaker must be closed")
	}
	// Two failures + success resets the streak.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("streak reset failed")
	}
	b.Failure() // third consecutive: opens
	if b.State() != Open || b.Opens() != 1 {
		t.Fatalf("state = %v opens = %d", b.State(), b.Opens())
	}
	// Cooldown: two rejected calls, then a half-open probe.
	if b.Allow() || b.Allow() {
		t.Fatal("open circuit must reject during cooldown")
	}
	if !b.Allow() {
		t.Fatal("cooldown elapsed: probe must be admitted")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Error("only one probe at a time")
	}
	// Failed probe re-opens; successful probe closes.
	b.Failure()
	if b.State() != Open || b.Opens() != 2 {
		t.Fatalf("failed probe: state = %v opens = %d", b.State(), b.Opens())
	}
	b.Allow()
	b.Allow()
	if !b.Allow() {
		t.Fatal("second probe must be admitted")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("successful probe must close, got %v", b.State())
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		Closed: "closed", Open: "open", HalfOpen: "half-open", BreakerState(9): "BreakerState(?)",
	} {
		if s.String() != want {
			t.Errorf("%d = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(BreakerConfig{FailureThreshold: 2, CooldownRejects: 1})
	if !r.Allow("isi", "transfer") {
		t.Fatal("fresh circuit must allow")
	}
	r.Record("isi", "transfer", errors.New("x"))
	r.Record("isi", "transfer", errors.New("x"))
	if r.Allow("isi", "transfer") {
		t.Error("two failures must open (threshold 2)")
	}
	// Distinct (site, op) pairs are independent.
	if !r.Allow("isi", "exec") || !r.Allow("fnal", "transfer") {
		t.Error("other circuits must stay closed")
	}
	if r.TotalOpens() != 1 {
		t.Errorf("total opens = %d", r.TotalOpens())
	}
	open := r.OpenCircuits()
	if len(open) != 1 || open[0] != "isi/transfer" {
		t.Errorf("open circuits = %v", open)
	}
	if r.For("isi", "transfer") != r.For("isi", "transfer") {
		t.Error("For must return the same breaker")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	if !r.Allow("s", "op") {
		t.Error("nil registry must allow")
	}
	r.Record("s", "op", errors.New("x"))
	if r.TotalOpens() != 0 || r.OpenCircuits() != nil || r.For("s", "op") != nil {
		t.Error("nil registry must report nothing")
	}
}

func TestClassify(t *testing.T) {
	checksum := &gridftp.ChecksumError{Site: "isi", Path: "g.fit", Want: "aa", Got: "bb"}
	transient := faults.New(1, faults.Rule{Name: "op", Kind: faults.KindTransient, Until: 1}).
		Check(faults.Op{Name: "op"})
	timeout := faults.New(1, faults.Rule{Name: "op", Kind: faults.KindTimeout, Until: 1}).
		Check(faults.Op{Name: "op"})
	siteDown := faults.New(1, faults.Rule{Name: "op", Kind: faults.KindSiteDown, Until: 1}).
		Check(faults.Op{Name: "op"})
	corruption := faults.New(1, faults.Rule{Name: "op", Kind: faults.KindCorruption, Until: 1}).
		Check(faults.Op{Name: "op"})

	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassFatal},
		{"plain error", errors.New("boom"), ClassFatal},
		{"checksum typed", checksum, ClassAlternateReplica},
		{"checksum wrapped", fmt.Errorf("transfer: %w", checksum), ClassAlternateReplica},
		{"checksum sentinel", gridftp.ErrChecksum, ClassAlternateReplica},
		{"fault transient", transient, ClassTransient},
		{"fault timeout", timeout, ClassTransient},
		{"fault site-down", siteDown, ClassTransient},
		{"fault corruption", corruption, ClassAlternateReplica},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Retryable: only transients — a damaged replica never heals by retry.
	if Retryable(checksum) {
		t.Error("checksum errors must not be same-replica retryable")
	}
	if !Retryable(transient) {
		t.Error("transient faults must be retryable")
	}
	if Retryable(errors.New("boom")) {
		t.Error("unknown errors must not be retryable")
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassFatal: "fatal", ClassTransient: "transient",
		ClassAlternateReplica: "alternate-replica", Class(9): "Class(?)",
	} {
		if c.String() != want {
			t.Errorf("%d -> %q", int(c), c.String())
		}
	}
}
