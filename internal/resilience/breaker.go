package resilience

import (
	"sort"
	"sync"
)

// BreakerState is a circuit breaker's current position.
type BreakerState int

// Breaker states: Closed passes traffic, Open rejects it, HalfOpen admits
// one probe to test recovery.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String labels the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "BreakerState(?)"
	}
}

// BreakerConfig tunes a circuit breaker. The breaker is clockless: cooldown
// is measured in rejected Allow calls, which keeps it deterministic under
// the discrete-event executors (no wall-clock reads).
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// circuit (default 3).
	FailureThreshold int
	// CooldownRejects is how many Allow calls are rejected while Open
	// before the breaker half-opens for a probe (default 5).
	CooldownRejects int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.CooldownRejects <= 0 {
		c.CooldownRejects = 5
	}
	return c
}

// Breaker is one (site, operation) circuit. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while Closed
	rejects  int // Allow calls rejected this Open episode
	opens    int // total Closed/HalfOpen -> Open transitions
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed. While Open it rejects
// CooldownRejects calls, then half-opens and admits a single probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		// One probe is already in flight; hold further traffic.
		return false
	default: // Open
		if b.rejects >= b.cfg.CooldownRejects {
			b.state = HalfOpen
			return true // the probe
		}
		b.rejects++
		return false
	}
}

// Success records a completed call, closing the circuit from a probe.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == HalfOpen {
		b.state = Closed
	}
}

// Failure records a failed call; enough consecutive failures (or a failed
// probe) open the circuit.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.open()
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.open()
		}
	}
}

// open transitions to Open (mu held).
func (b *Breaker) open() {
	b.state = Open
	b.failures = 0
	b.rejects = 0
	b.opens++
}

// Record folds an operation outcome into the breaker.
func (b *Breaker) Record(err error) {
	if err != nil {
		b.Failure()
	} else {
		b.Success()
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times this circuit has opened.
func (b *Breaker) Opens() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// Registry holds one breaker per (site, operation) pair, created on demand
// with a shared configuration.
type Registry struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[[2]string]*Breaker
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg BreakerConfig) *Registry {
	return &Registry{cfg: cfg.withDefaults(), m: map[[2]string]*Breaker{}}
}

// For returns (creating on demand) the breaker for a (site, op) pair. A nil
// registry returns nil, and a nil *Breaker is never returned otherwise.
func (r *Registry) For(site, op string) *Breaker {
	if r == nil {
		return nil
	}
	k := [2]string{site, op}
	r.mu.Lock()
	defer r.mu.Unlock()
	if b, ok := r.m[k]; ok {
		return b
	}
	b := NewBreaker(r.cfg)
	r.m[k] = b
	return b
}

// Allow is a nil-safe convenience: a nil registry always allows.
func (r *Registry) Allow(site, op string) bool {
	if r == nil {
		return true
	}
	return r.For(site, op).Allow()
}

// Record is a nil-safe convenience folding an outcome into (site, op).
func (r *Registry) Record(site, op string, err error) {
	if r == nil {
		return
	}
	r.For(site, op).Record(err)
}

// TotalOpens sums circuit-open transitions across every breaker.
func (r *Registry) TotalOpens() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, b := range r.m {
		n += b.Opens()
	}
	return n
}

// OpenCircuits lists the (site, op) pairs currently not Closed, sorted.
func (r *Registry) OpenCircuits() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k, b := range r.m {
		if b.State() != Closed {
			out = append(out, k[0]+"/"+k[1])
		}
	}
	sort.Strings(out)
	return out
}
