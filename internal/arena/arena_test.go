package arena

import (
	"sync"
	"testing"
)

func TestFloatsDisjointAndSized(t *testing.T) {
	a := Get()
	defer Put(a)
	x := a.Floats(100)
	y := a.Floats(100)
	if len(x) != 100 || len(y) != 100 {
		t.Fatalf("lengths: %d, %d", len(x), len(y))
	}
	for i := range x {
		x[i] = 1
	}
	for i := range y {
		y[i] = 2
	}
	for i, v := range x {
		if v != 1 {
			t.Fatalf("x[%d] clobbered: %g", i, v)
		}
	}
}

func TestAppendBeyondCapDoesNotClobberNeighbor(t *testing.T) {
	a := Get()
	defer Put(a)
	x := a.Floats(4)[:0]
	sentinel := a.Floats(4)
	for i := range sentinel {
		sentinel[i] = 7
	}
	for i := 0; i < 16; i++ { // grows past the 4-element window
		x = append(x, float64(i))
	}
	for i, v := range sentinel {
		if v != 7 {
			t.Fatalf("sentinel[%d] clobbered by append growth: %g", i, v)
		}
	}
	for i, v := range x {
		if v != float64(i) {
			t.Fatalf("x[%d] = %g", i, v)
		}
	}
}

func TestLargeAllocationGetsOwnSlab(t *testing.T) {
	a := Get()
	defer Put(a)
	big := a.Floats(minFloatSlab * 3)
	if len(big) != minFloatSlab*3 {
		t.Fatalf("len = %d", len(big))
	}
	big[0], big[len(big)-1] = 1, 2 // must not panic
}

func TestResetRewindsAndReusesSlabs(t *testing.T) {
	a := Get()
	defer Put(a)
	first := a.Floats(64)
	firstPtr := &first[0]
	a.Reset()
	second := a.Floats(64)
	if &second[0] != firstPtr {
		t.Fatal("reset did not rewind to the same slab memory")
	}
}

func TestResetClearsStrings(t *testing.T) {
	a := Get()
	s := a.Strings(8)
	for i := range s {
		s[i] = "retained"
	}
	a.Reset()
	s2 := a.Strings(8)
	for i, v := range s2 {
		if v != "" {
			t.Fatalf("string slot %d not cleared after reset: %q", i, v)
		}
	}
	Put(a)
}

func TestZeroLength(t *testing.T) {
	a := Get()
	defer Put(a)
	if got := a.Floats(0); len(got) != 0 {
		t.Fatalf("Floats(0) len = %d", len(got))
	}
	if got := a.Bytes(0); len(got) != 0 {
		t.Fatalf("Bytes(0) len = %d", len(got))
	}
	if got := a.Strings(0); len(got) != 0 {
		t.Fatalf("Strings(0) len = %d", len(got))
	}
}

func TestBytesAndStringsSpans(t *testing.T) {
	a := Get()
	defer Put(a)
	b := a.Bytes(16)
	for i := range b {
		b[i] = byte(i)
	}
	c := a.Bytes(16)
	for i := range c {
		c[i] = 0xFF
	}
	for i := range b {
		if b[i] != byte(i) {
			t.Fatalf("byte region clobbered at %d", i)
		}
	}
	s := a.Strings(3)
	copy(s, []string{"a", "b", "c"})
	s2 := a.Strings(3)
	copy(s2, []string{"x", "y", "z"})
	if s[0] != "a" || s2[2] != "z" {
		t.Fatalf("string regions overlap: %v %v", s, s2)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := Get()
				x := a.Floats(1024)
				for j := range x {
					x[j] = float64(g)
				}
				for j := range x {
					if x[j] != float64(g) {
						t.Errorf("cross-goroutine clobber at %d", j)
						break
					}
				}
				Put(a)
			}
		}(g)
	}
	wg.Wait()
}

func TestFootprintGrowsWithUse(t *testing.T) {
	a := &Arena{}
	if a.Footprint() != 0 {
		t.Fatalf("zero-value footprint = %d", a.Footprint())
	}
	a.Floats(100)
	if a.Footprint() < 100*8 {
		t.Fatalf("footprint after alloc = %d", a.Footprint())
	}
}

func TestAllocZeroAllocAfterWarmup(t *testing.T) {
	a := Get()
	defer Put(a)
	a.Floats(2048) // warm the slab
	a.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		_ = a.Floats(2048)
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("warm arena Floats allocated %.1f times per run", allocs)
	}
}
