// Package arena provides request-lifetime bump allocation over pooled
// slabs for the webservice's per-galaxy hot path.
//
// PR 2's morphology scratch pool recycles a handful of fixed-shape buffers;
// the arena generalizes that to every transient buffer a request touches —
// decoded pixel arrays, background border samples, result encodings, spool
// row copies. A job body takes one Arena (Get), bump-allocates from it as
// it works, and returns it at the end (Put), which resets the offsets and
// recycles the slabs. Allocation cost per buffer is a slice header and an
// offset bump; the per-request garbage is the Arena bookkeeping, not the
// buffers.
//
// Arenas are typed — separate float64, byte and string slabs — and use no
// unsafe: pointer-containing values (the string slab) stay visible to the
// garbage collector and are cleared on reset so an arena never pins a
// previous request's data.
//
// An Arena is not safe for concurrent use. Each concurrent job body must
// take its own (the pool makes that cheap); the webservice runner does
// exactly that, so worker-pool parallelism never shares one.
package arena

import "sync"

// Slab sizing: big enough that a typical galaxy measurement (64×64 cutout
// = 4096 pixels plus border samples) fits in the first float slab, small
// enough that a pooled idle arena costs well under a megabyte.
const (
	minFloatSlab  = 8192 // 64 KiB
	minByteSlab   = 4096
	minStringSlab = 256
)

// span is one typed bump allocator: a list of slabs, a cursor slab and an
// offset within it. Allocation never moves existing data; reset just
// rewinds the cursor, keeping every slab for the next request.
type span[T any] struct {
	slabs   [][]T
	cur     int // slab being filled
	used    int // elements used in slabs[cur]
	minSlab int
}

// alloc returns an uninitialized length-n slice with private capacity
// (three-index sliced, so appends past n never clobber a neighbor).
func (s *span[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	for s.cur < len(s.slabs) {
		if slab := s.slabs[s.cur]; s.used+n <= len(slab) {
			out := slab[s.used : s.used+n : s.used+n]
			s.used += n
			return out
		}
		s.cur++
		s.used = 0
	}
	size := s.minSlab
	if n > size {
		size = n
	}
	s.slabs = append(s.slabs, make([]T, size))
	out := s.slabs[s.cur][:n:n]
	s.used = n
	return out
}

// reset rewinds the span. When clearValues is set the used prefix of every
// slab is zeroed first — required for pointer-containing element types so
// the retained slabs do not pin the previous request's data.
func (s *span[T]) reset(clearValues bool) {
	if clearValues {
		for i := 0; i <= s.cur && i < len(s.slabs); i++ {
			n := len(s.slabs[i])
			if i == s.cur {
				n = s.used
			}
			clear(s.slabs[i][:n])
		}
	}
	s.cur = 0
	s.used = 0
}

// footprint is the total element capacity currently retained.
func (s *span[T]) footprint() int {
	total := 0
	for _, slab := range s.slabs {
		total += len(slab)
	}
	return total
}

// Arena is a request-lifetime allocator. The zero value is ready to use;
// prefer Get/Put so slabs recycle across requests.
type Arena struct {
	floats  span[float64]
	bytes   span[byte]
	strings span[string]
}

var pool = sync.Pool{New: func() any {
	return &Arena{
		floats:  span[float64]{minSlab: minFloatSlab},
		bytes:   span[byte]{minSlab: minByteSlab},
		strings: span[string]{minSlab: minStringSlab},
	}
}}

// Get takes an arena from the pool. Pair with Put at the end of the
// request (or job body) that owns it.
func Get() *Arena { return pool.Get().(*Arena) }

// Put resets a and returns it to the pool. The caller must not retain any
// slice obtained from a afterwards.
func Put(a *Arena) {
	a.Reset()
	pool.Put(a)
}

// Reset rewinds every span, keeping the slabs. String slots are cleared so
// the arena does not pin freed backing arrays.
func (a *Arena) Reset() {
	a.floats.reset(false)
	a.bytes.reset(false)
	a.strings.reset(true)
}

// Floats returns an uninitialized length-n float64 slice. Contents are
// arbitrary (possibly stale values from an earlier request on this arena);
// the caller must write every element it reads, or slice to [:0] and
// append. Appending beyond n falls back to the ordinary heap.
func (a *Arena) Floats(n int) []float64 { return a.floats.alloc(n) }

// Bytes returns an uninitialized length-n byte slice with the same
// contract as Floats.
func (a *Arena) Bytes(n int) []byte { return a.bytes.alloc(n) }

// Strings returns a zeroed length-n string slice (string slots are cleared
// on reset, so unlike Floats/Bytes the contents are always empty strings).
func (a *Arena) Strings(n int) []string { return a.strings.alloc(n) }

// Footprint reports the retained slab capacity in bytes — observability
// for tests and soak instrumentation.
func (a *Arena) Footprint() int {
	return a.floats.footprint()*8 + a.bytes.footprint() + a.strings.footprint()*16
}
