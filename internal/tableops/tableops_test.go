package tableops

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/votable"
)

func galaxies() *votable.Table {
	t := votable.NewTable("galaxies",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "mag", Datatype: votable.TypeFloat},
	)
	_ = t.AppendRow("G1", "15.2")
	_ = t.AppendRow("G2", "17.9")
	_ = t.AppendRow("G3", "16.1")
	return t
}

func morphs() *votable.Table {
	t := votable.NewTable("morph",
		votable.Field{Name: "id", Datatype: votable.TypeChar},
		votable.Field{Name: "asymmetry", Datatype: votable.TypeDouble},
	)
	_ = t.AppendRow("G1", "0.02")
	_ = t.AppendRow("G3", "0.21")
	return t
}

func docOf(tabs ...*votable.Table) *votable.Document {
	doc := &votable.Document{}
	for _, t := range tabs {
		doc.Resources = append(doc.Resources, votable.Resource{Tables: []votable.Table{*t}})
	}
	return doc
}

func TestJoinModes(t *testing.T) {
	doc := docOf(galaxies(), morphs())
	inner, err := Join(doc, "id", "id", "inner")
	if err != nil {
		t.Fatal(err)
	}
	if inner.NumRows() != 2 {
		t.Errorf("inner rows = %d", inner.NumRows())
	}
	left, err := Join(docOf(galaxies(), morphs()), "id", "id", "left")
	if err != nil {
		t.Fatal(err)
	}
	if left.NumRows() != 3 {
		t.Errorf("left rows = %d", left.NumRows())
	}
	if _, err := Join(doc, "", "id", ""); err == nil {
		t.Error("missing key must fail")
	}
	if _, err := Join(doc, "id", "id", "outer"); err == nil {
		t.Error("unknown mode must fail")
	}
	if _, err := Join(docOf(galaxies()), "id", "id", ""); err == nil {
		t.Error("single-table document must fail")
	}
}

func TestSortFilterSelect(t *testing.T) {
	sorted, err := Sort(docOf(galaxies()), "mag")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Cell(0, "id") != "G1" || sorted.Cell(2, "id") != "G2" {
		t.Errorf("sort order: %v", sorted.Rows)
	}
	if _, err := Sort(docOf(galaxies()), "nope"); err == nil {
		t.Error("unknown sort column must fail")
	}
	if _, err := Sort(&votable.Document{}, "mag"); err == nil {
		t.Error("empty document must fail")
	}

	bright, err := Filter(docOf(galaxies()), "mag", math.Inf(-1), 16.5)
	if err != nil {
		t.Fatal(err)
	}
	if bright.NumRows() != 2 {
		t.Errorf("filter rows = %d", bright.NumRows())
	}
	if _, err := Filter(docOf(galaxies()), "nope", 0, 1); err == nil {
		t.Error("unknown filter column must fail")
	}

	proj, err := Select(docOf(galaxies()), []string{"mag", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if proj.NumCols() != 2 || proj.Fields[0].Name != "mag" {
		t.Errorf("select fields: %+v", proj.Fields)
	}
	if proj.Cell(0, "id") != "G1" {
		t.Errorf("select row: %v", proj.Rows[0])
	}
	if _, err := Select(docOf(galaxies()), nil); err == nil {
		t.Error("empty cols must fail")
	}
	if _, err := Select(docOf(galaxies()), []string{"zz"}); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestHTTPService(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	c := &Client{Base: srv.URL}

	joined, err := c.Join(galaxies(), morphs(), "id", "id", "left")
	if err != nil {
		t.Fatal(err)
	}
	if joined.NumRows() != 3 || joined.ColumnIndex("asymmetry") < 0 {
		t.Errorf("joined = %v", joined.Rows)
	}

	sorted, err := c.Sort(galaxies(), "mag")
	if err != nil {
		t.Fatal(err)
	}
	if sorted.Cell(0, "mag") != "15.2" {
		t.Errorf("sorted = %v", sorted.Rows)
	}

	filtered, err := c.Filter(galaxies(), "mag", 16, 18)
	if err != nil {
		t.Fatal(err)
	}
	if filtered.NumRows() != 2 {
		t.Errorf("filtered rows = %d", filtered.NumRows())
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()

	resp, _ := http.Get(srv.URL + "/join")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET join = %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/join?key_a=id&key_b=id", "text/xml", strings.NewReader("junk"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("junk body = %d", resp.StatusCode)
	}
	// Valid VOTable, bad params.
	var body strings.Builder
	_ = votable.WriteTable(&body, galaxies())
	resp, _ = http.Post(srv.URL+"/filter?col=mag&min=abc", "text/xml", strings.NewReader(body.String()))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min = %d", resp.StatusCode)
	}
	body.Reset()
	_ = votable.WriteTable(&body, galaxies())
	resp, _ = http.Post(srv.URL+"/filter?col=mag&max=abc", "text/xml", strings.NewReader(body.String()))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad max = %d", resp.StatusCode)
	}
	// Client surfaces server-side failures.
	c := &Client{Base: srv.URL}
	if _, err := c.Join(galaxies(), morphs(), "ghost", "id", ""); err == nil {
		t.Error("client must surface join errors")
	}
}

func BenchmarkServiceJoin(b *testing.B) {
	srv := httptest.NewServer(Handler())
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	a := galaxies()
	m := morphs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Join(a, m, "id", "id", "left"); err != nil {
			b.Fatal(err)
		}
	}
}
