// Package tableops implements the general-purpose VOTable manipulation
// service the paper identifies as missing NVO infrastructure: "Joining is
// one of a few general-purpose VOTable manipulations that should be
// implemented as a generic, external service that could be used by a number
// of different NVO applications" (§4.2), and "a service that could join two
// VOTables on an arbitrary column or manipulate tables in other ways" (§5).
//
// The service accepts VOTable documents over HTTP and returns VOTable
// results:
//
//	POST /join?key_a=id&key_b=id[&mode=left]   body: document with two TABLEs
//	POST /sort?by=col                          body: document with one TABLE
//	POST /filter?col=mag&min=14&max=18         body: document with one TABLE
//	POST /select?cols=id,ra,dec                body: document with one TABLE
package tableops

import (
	"errors"
	"fmt"
	"math"
	"net/http"

	"net/url"
	"repro/internal/httpclient"
	"strconv"
	"strings"

	"repro/internal/votable"
)

// Errors returned by the operations.
var (
	ErrNeedTwoTables = errors.New("tableops: join needs a document with two tables")
	ErrNeedOneTable  = errors.New("tableops: need a document with one table")
	ErrBadParams     = errors.New("tableops: bad parameters")
)

// firstTwoTables extracts the first two tables of a document.
func firstTwoTables(doc *votable.Document) (*votable.Table, *votable.Table, error) {
	var tabs []*votable.Table
	for ri := range doc.Resources {
		for ti := range doc.Resources[ri].Tables {
			tabs = append(tabs, &doc.Resources[ri].Tables[ti])
			if len(tabs) == 2 {
				return tabs[0], tabs[1], nil
			}
		}
	}
	return nil, nil, ErrNeedTwoTables
}

// Join performs the service's join operation on a parsed document.
func Join(doc *votable.Document, keyA, keyB, mode string) (*votable.Table, error) {
	if keyA == "" || keyB == "" {
		return nil, fmt.Errorf("%w: key_a and key_b required", ErrBadParams)
	}
	a, b, err := firstTwoTables(doc)
	if err != nil {
		return nil, err
	}
	switch mode {
	case "", "inner":
		return votable.Join(a, b, keyA, keyB)
	case "left":
		return votable.LeftJoin(a, b, keyA, keyB)
	default:
		return nil, fmt.Errorf("%w: mode %q", ErrBadParams, mode)
	}
}

// Sort sorts the document's table ascending by a numeric column.
func Sort(doc *votable.Document, by string) (*votable.Table, error) {
	t, err := doc.FirstTable()
	if err != nil {
		return nil, ErrNeedOneTable
	}
	out := t.Clone()
	if err := out.SortByFloat(by); err != nil {
		return nil, err
	}
	return out, nil
}

// Filter keeps rows whose numeric column value lies in [min, max].
func Filter(doc *votable.Document, col string, min, max float64) (*votable.Table, error) {
	t, err := doc.FirstTable()
	if err != nil {
		return nil, ErrNeedOneTable
	}
	if t.ColumnIndex(col) < 0 {
		return nil, fmt.Errorf("%w: no column %q", ErrBadParams, col)
	}
	return t.Filter(func(i int) bool {
		v, ok := t.Float(i, col)
		return ok && v >= min && v <= max
	}), nil
}

// Select projects the table onto the named columns, in the given order.
func Select(doc *votable.Document, cols []string) (*votable.Table, error) {
	t, err := doc.FirstTable()
	if err != nil {
		return nil, ErrNeedOneTable
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: cols required", ErrBadParams)
	}
	idx := make([]int, len(cols))
	out := votable.NewTable(t.Name)
	for i, c := range cols {
		j := t.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("%w: no column %q", ErrBadParams, c)
		}
		idx[i] = j
		out.Fields = append(out.Fields, t.Fields[j])
	}
	for _, row := range t.Rows {
		newRow := make([]string, len(idx))
		for i, j := range idx {
			newRow[i] = row[j]
		}
		out.Rows = append(out.Rows, newRow)
	}
	return out, nil
}

// Handler exposes the operations over HTTP.
func Handler() http.Handler {
	mux := http.NewServeMux()

	handle := func(path string, op func(*votable.Document, url.Values) (*votable.Table, error)) {
		mux.HandleFunc(path, func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			doc, err := votable.Read(req.Body)
			if err != nil {
				http.Error(w, "bad VOTable: "+err.Error(), http.StatusBadRequest)
				return
			}
			out, err := op(doc, req.URL.Query())
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "text/xml")
			_ = votable.WriteTable(w, out)
		})
	}

	handle("/join", func(doc *votable.Document, q url.Values) (*votable.Table, error) {
		return Join(doc, q.Get("key_a"), q.Get("key_b"), q.Get("mode"))
	})
	handle("/sort", func(doc *votable.Document, q url.Values) (*votable.Table, error) {
		return Sort(doc, q.Get("by"))
	})
	handle("/filter", func(doc *votable.Document, q url.Values) (*votable.Table, error) {
		min, max := math.Inf(-1), math.Inf(1)
		if s := q.Get("min"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: min %q", ErrBadParams, s)
			}
			min = v
		}
		if s := q.Get("max"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: max %q", ErrBadParams, s)
			}
			max = v
		}
		return Filter(doc, q.Get("col"), min, max)
	})
	handle("/select", func(doc *votable.Document, q url.Values) (*votable.Table, error) {
		var cols []string
		if s := q.Get("cols"); s != "" {
			cols = strings.Split(s, ",")
		}
		return Select(doc, cols)
	})

	return mux
}

// Client invokes a remote tableops service.
type Client struct {
	Base string
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return httpclient.Shared()
}

// Join sends two tables for a server-side join.
func (c *Client) Join(a, b *votable.Table, keyA, keyB, mode string) (*votable.Table, error) {
	doc := &votable.Document{Resources: []votable.Resource{
		{Name: "a", Tables: []votable.Table{*a}},
		{Name: "b", Tables: []votable.Table{*b}},
	}}
	u := fmt.Sprintf("%s/join?key_a=%s&key_b=%s&mode=%s",
		c.Base, url.QueryEscape(keyA), url.QueryEscape(keyB), url.QueryEscape(mode))
	return c.post(u, doc)
}

// Sort sends one table for server-side sorting.
func (c *Client) Sort(t *votable.Table, by string) (*votable.Table, error) {
	return c.postOne(fmt.Sprintf("%s/sort?by=%s", c.Base, url.QueryEscape(by)), t)
}

// Filter sends one table for server-side numeric filtering.
func (c *Client) Filter(t *votable.Table, col string, min, max float64) (*votable.Table, error) {
	return c.postOne(fmt.Sprintf("%s/filter?col=%s&min=%v&max=%v",
		c.Base, url.QueryEscape(col), min, max), t)
}

func (c *Client) postOne(u string, t *votable.Table) (*votable.Table, error) {
	doc := &votable.Document{Resources: []votable.Resource{{Tables: []votable.Table{*t}}}}
	return c.post(u, doc)
}

func (c *Client) post(u string, doc *votable.Document) (*votable.Table, error) {
	var body strings.Builder
	if err := votable.Write(&body, doc); err != nil {
		return nil, err
	}
	resp, err := c.http().Post(u, "text/xml", strings.NewReader(body.String()))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg := make([]byte, 256)
		n, _ := resp.Body.Read(msg)
		return nil, fmt.Errorf("tableops: status %d: %s", resp.StatusCode, msg[:n])
	}
	return votable.ReadTable(resp.Body)
}
