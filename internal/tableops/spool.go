package tableops

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/arena"
)

// DefaultSpoolMemRows bounds how many rows a Spool holds in memory before
// spilling a sorted run to disk. A survey-scale concatenation therefore
// needs O(DefaultSpoolMemRows) memory for sorting regardless of how many
// rows pass through.
const DefaultSpoolMemRows = 4096

// ErrSpoolClosed reports use of a spool after Close (or a second Merge).
var ErrSpoolClosed = errors.New("tableops: spool closed")

// Spool accumulates string rows and replays them sorted by a key column,
// spilling sorted runs to temporary files whenever the in-memory batch
// exceeds its budget — a classic external merge sort, the bounded-memory
// replacement for "append everything to a slice and sort it". Rows with
// equal keys replay in insertion order (the merge is stable), so replaying
// a spool is deterministic. A Spool is single-use: Add rows, Merge once,
// Close. It is not safe for concurrent use.
type Spool struct {
	keyCol  int
	memRows int
	mem     [][]string
	runs    []*os.File
	rows    int
	closed  bool

	// Optional request arena for row copies. Spilled rows return to free
	// and are recycled by later Adds, so the arena footprint stays bounded
	// by memRows rows no matter how many rows pass through.
	arena *arena.Arena
	free  [][]string
}

// NewSpool returns a spool sorting on the keyCol-th cell of every row.
// memRows <= 0 selects DefaultSpoolMemRows.
func NewSpool(keyCol, memRows int) *Spool {
	if memRows <= 0 {
		memRows = DefaultSpoolMemRows
	}
	return &Spool{keyCol: keyCol, memRows: memRows}
}

// NewSpoolIn is NewSpool with row copies drawn from a request arena
// instead of the heap — the hot-path variant the webservice concatenation
// uses. The arena must outlive the spool (Put it after Close/Merge).
func NewSpoolIn(a *arena.Arena, keyCol, memRows int) *Spool {
	s := NewSpool(keyCol, memRows)
	s.arena = a
	return s
}

// Len returns the number of rows added so far.
func (s *Spool) Len() int { return s.rows }

// Add appends one row; the cells are copied. Rows must be wide enough to
// hold the key column.
func (s *Spool) Add(cells ...string) error {
	if s.closed {
		return ErrSpoolClosed
	}
	if s.keyCol >= len(cells) {
		return fmt.Errorf("tableops: spool row has %d cells, key column is %d", len(cells), s.keyCol)
	}
	s.mem = append(s.mem, s.copyRow(cells))
	s.rows++
	if len(s.mem) >= s.memRows {
		return s.spill()
	}
	return nil
}

// copyRow takes ownership of one row's cells: a heap copy normally, an
// arena-backed (and spill-recycled) copy for spools built with NewSpoolIn.
//
//nvo:hotpath
func (s *Spool) copyRow(cells []string) []string {
	if s.arena == nil {
		//nvolint:ignore hotalloc until=PR12 heap fallback for spools built without an arena; retire it once every production Spool carries one
		return append([]string(nil), cells...)
	}
	if n := len(s.free); n > 0 && len(s.free[n-1]) == len(cells) {
		row := s.free[n-1]
		s.free = s.free[:n-1]
		copy(row, cells)
		return row
	}
	row := s.arena.Strings(len(cells))
	copy(row, cells)
	return row
}

// spill sorts the in-memory batch and writes it as one run file.
func (s *Spool) spill() error {
	s.sortMem()
	f, err := os.CreateTemp("", "tableops-spool-*.run")
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	for _, row := range s.mem {
		if err := writeRun(bw, row); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	s.runs = append(s.runs, f)
	if s.arena != nil {
		// The spilled rows now live in the run file; recycle their arena
		// slots so the next batch reuses them instead of growing the arena.
		s.free = append(s.free, s.mem...)
	}
	s.mem = s.mem[:0]
	return nil
}

// sortMem orders the in-memory batch by key, preserving insertion order for
// equal keys so the whole spool replays stably.
func (s *Spool) sortMem() {
	k := s.keyCol
	sort.SliceStable(s.mem, func(i, j int) bool { return s.mem[i][k] < s.mem[j][k] })
}

// runCursor iterates one source of sorted rows: either a run file or the
// final in-memory batch. seq breaks key ties in spill order, which is
// insertion order because every run holds older rows than the next.
type runCursor struct {
	head []string
	seq  int
	next func() ([]string, error) // nil head sentinel on exhaustion
}

func (c *runCursor) advance() error {
	row, err := c.next()
	if err != nil {
		return err
	}
	c.head = row
	return nil
}

// Merge replays every added row in (key, insertion order) order and closes
// the spool. fn's error aborts the merge and is returned verbatim.
func (s *Spool) Merge(fn func(cells []string) error) error {
	if s.closed {
		return ErrSpoolClosed
	}
	s.sortMem()

	cursors := make([]*runCursor, 0, len(s.runs)+1)
	for i, f := range s.runs {
		br := bufio.NewReader(f)
		cursors = append(cursors, &runCursor{seq: i, next: func() ([]string, error) { return readRun(br) }})
	}
	memIdx := 0
	cursors = append(cursors, &runCursor{seq: len(s.runs), next: func() ([]string, error) {
		if memIdx >= len(s.mem) {
			return nil, nil
		}
		row := s.mem[memIdx]
		memIdx++
		return row, nil
	}})
	for _, c := range cursors {
		if err := c.advance(); err != nil {
			return err
		}
	}

	k := s.keyCol
	for {
		var best *runCursor
		for _, c := range cursors {
			if c.head == nil {
				continue
			}
			if best == nil || c.head[k] < best.head[k] ||
				(c.head[k] == best.head[k] && c.seq < best.seq) {
				best = c
			}
		}
		if best == nil {
			return s.Close()
		}
		row := best.head
		if err := best.advance(); err != nil {
			return err
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// Close releases the spool's memory and removes its run files. It is safe
// to call more than once; Merge calls it on success.
func (s *Spool) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.mem = nil
	s.free = nil
	var firstErr error
	for _, f := range s.runs {
		name := f.Name()
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := os.Remove(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.runs = nil
	return firstErr
}

// writeRun appends one row to a run file: uvarint cell count, then
// uvarint-length-prefixed cells.
func writeRun(bw *bufio.Writer, row []string) error {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(row)))
	if _, err := bw.Write(scratch[:n]); err != nil {
		return err
	}
	for _, cell := range row {
		n := binary.PutUvarint(scratch[:], uint64(len(cell)))
		if _, err := bw.Write(scratch[:n]); err != nil {
			return err
		}
		if _, err := bw.WriteString(cell); err != nil {
			return err
		}
	}
	return nil
}

// readRun reads one row from a run file, returning (nil, nil) at EOF.
func readRun(br *bufio.Reader) ([]string, error) {
	ncells, err := binary.ReadUvarint(br)
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tableops: corrupt spool run: %w", err)
	}
	row := make([]string, ncells)
	for i := range row {
		sz, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tableops: corrupt spool run: %w", err)
		}
		buf := make([]byte, sz)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("tableops: corrupt spool run: %w", err)
		}
		row[i] = string(buf)
	}
	return row, nil
}
