package tableops

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/arena"
)

// TestSpoolInMatchesHeapSpool replays identical row streams through a heap
// spool and an arena spool (with spills forced on both) and requires
// identical merge output — the arena is an allocation strategy, never an
// observable behavior change.
func TestSpoolInMatchesHeapSpool(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rows [][]string
	for i := 0; i < 500; i++ {
		rows = append(rows, []string{
			fmt.Sprintf("g%03d", rng.Intn(120)), // many duplicate keys
			fmt.Sprintf("v%d", i),
			fmt.Sprintf("w%d", rng.Intn(10)),
		})
	}

	heap := NewSpool(0, 16)
	a := arena.Get()
	defer arena.Put(a)
	ar := NewSpoolIn(a, 0, 16)
	defer ar.Close()
	defer heap.Close()
	for _, r := range rows {
		if err := heap.Add(r...); err != nil {
			t.Fatal(err)
		}
		if err := ar.Add(r...); err != nil {
			t.Fatal(err)
		}
	}
	got := collectMerge(t, ar)
	want := collectMerge(t, heap)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("arena spool merge diverged from heap spool")
	}
}

// TestSpoolInReusedCallerBuffer checks the hot-path calling convention: the
// caller refills ONE row buffer between Adds, so the spool's copies must be
// real copies, not aliases of the caller's cells.
func TestSpoolInReusedCallerBuffer(t *testing.T) {
	a := arena.Get()
	defer arena.Put(a)
	sp := NewSpoolIn(a, 0, 4) // spill every 4 rows
	defer sp.Close()
	row := make([]string, 2)
	for i := 9; i >= 0; i-- {
		row[0] = fmt.Sprintf("k%d", i)
		row[1] = fmt.Sprintf("v%d", i)
		if err := sp.Add(row...); err != nil {
			t.Fatal(err)
		}
	}
	got := collectMerge(t, sp)
	for i, r := range got {
		want := []string{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)}
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("row %d = %v, want %v (caller buffer aliased?)", i, r, want)
		}
	}
}

// TestSpoolInArenaFootprintBounded: spilled rows recycle their arena slots,
// so the arena's string footprint is bounded by memRows regardless of how
// many rows pass through.
func TestSpoolInArenaFootprintBounded(t *testing.T) {
	a := arena.Get()
	defer arena.Put(a)
	const memRows = 32
	sp := NewSpoolIn(a, 0, memRows)
	defer sp.Close()
	var afterWarm int
	for i := 0; i < 50*memRows; i++ {
		if err := sp.Add(fmt.Sprintf("k%06d", i), "value"); err != nil {
			t.Fatal(err)
		}
		if i == 2*memRows {
			afterWarm = a.Footprint()
		}
	}
	if after := a.Footprint(); after > afterWarm {
		t.Fatalf("arena footprint grew from %d to %d across 50 spills; free-list recycling is broken", afterWarm, after)
	}
}
