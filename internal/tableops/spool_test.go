package tableops

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// collectMerge replays a spool into a slice.
func collectMerge(t *testing.T, sp *Spool) [][]string {
	t.Helper()
	var out [][]string
	if err := sp.Merge(func(cells []string) error {
		out = append(out, append([]string(nil), cells...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSpoolSortsWithoutSpill covers the all-in-memory path.
func TestSpoolSortsWithoutSpill(t *testing.T) {
	sp := NewSpool(0, 100)
	defer sp.Close()
	for _, id := range []string{"c", "a", "b"} {
		if err := sp.Add(id, "v-"+id); err != nil {
			t.Fatal(err)
		}
	}
	got := collectMerge(t, sp)
	want := [][]string{{"a", "v-a"}, {"b", "v-b"}, {"c", "v-c"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
}

// TestSpoolSpillsAndMerges forces many tiny runs and checks the k-way merge
// against an in-memory stable sort.
func TestSpoolSpillsAndMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sp := NewSpool(1, 7) // key is the second cell; spill every 7 rows
	defer sp.Close()
	type row struct {
		cells []string
		seq   int
	}
	var rows []row
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%03d", rng.Intn(40)) // lots of duplicate keys
		cells := []string{fmt.Sprintf("payload-%d", i), key}
		rows = append(rows, row{cells, i})
		if err := sp.Add(cells...); err != nil {
			t.Fatal(err)
		}
	}
	if sp.Len() != 500 {
		t.Fatalf("Len = %d", sp.Len())
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].cells[1] < rows[j].cells[1] })
	want := make([][]string, len(rows))
	for i, r := range rows {
		want[i] = r.cells
	}
	got := collectMerge(t, sp)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("external merge diverges from stable in-memory sort")
	}
}

// TestSpoolCleansUpRunFiles checks that no temp run files survive a merge.
func TestSpoolCleansUpRunFiles(t *testing.T) {
	countRuns := func() int {
		matches, err := filepath.Glob(filepath.Join(os.TempDir(), "tableops-spool-*.run"))
		if err != nil {
			t.Fatal(err)
		}
		return len(matches)
	}
	before := countRuns()
	sp := NewSpool(0, 2)
	for i := 0; i < 20; i++ {
		if err := sp.Add(fmt.Sprintf("%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Merge(func([]string) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if after := countRuns(); after != before {
		t.Errorf("run files leaked: %d before, %d after", before, after)
	}
}

// TestSpoolErrorsAndMisuse covers callback errors, narrow rows and
// use-after-close.
func TestSpoolErrorsAndMisuse(t *testing.T) {
	sp := NewSpool(2, 4)
	defer sp.Close()
	if err := sp.Add("only", "two"); err == nil {
		t.Error("row narrower than the key column must fail")
	}
	if err := sp.Add("a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	if err := sp.Merge(func([]string) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Merge error = %v, want sentinel verbatim", err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sp.Add("x", "y", "z"); !errors.Is(err, ErrSpoolClosed) {
		t.Errorf("Add after Close = %v", err)
	}
	if err := sp.Merge(func([]string) error { return nil }); !errors.Is(err, ErrSpoolClosed) {
		t.Errorf("Merge after Close = %v", err)
	}
}

// TestSpoolPreservesCellContent round-trips awkward cell values through the
// run-file codec.
func TestSpoolPreservesCellContent(t *testing.T) {
	values := []string{"", "plain", "with space", "tab\tand\nnewline", strings.Repeat("x", 10_000), "unié 末"}
	sp := NewSpool(0, 2) // force spills
	defer sp.Close()
	for i, v := range values {
		if err := sp.Add(fmt.Sprintf("%02d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	got := collectMerge(t, sp)
	for i, v := range values {
		if got[i][1] != v {
			t.Errorf("cell %d round-tripped to %q, want %q", i, got[i][1], v)
		}
	}
}
