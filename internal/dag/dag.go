// Package dag provides the directed-acyclic-graph structure every layer of
// the workflow system shares: Chimera emits abstract workflows as DAGs,
// Pegasus reduces and concretizes them, and DAGMan executes them (Figures 1,
// 3 and 4 of the paper are all instances of this type).
//
// Nodes carry a free-form Type ("compute", "transfer", "register", ...) and
// string attributes; edges run from a node to the nodes that depend on it.
package dag

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Node is one vertex of a workflow graph.
type Node struct {
	ID    string
	Type  string
	Attrs map[string]string
}

// Attr returns an attribute value or "".
func (n *Node) Attr(key string) string { return n.Attrs[key] }

// SetAttr sets an attribute, allocating the map on first use.
func (n *Node) SetAttr(key, value string) {
	if n.Attrs == nil {
		n.Attrs = map[string]string{}
	}
	n.Attrs[key] = value
}

// Graph is a mutable DAG. The zero value is not usable; call New.
type Graph struct {
	nodes    map[string]*Node
	children map[string]map[string]bool
	parents  map[string]map[string]bool
}

// Errors returned by graph operations.
var (
	ErrNoSuchNode   = errors.New("dag: no such node")
	ErrDupNode      = errors.New("dag: duplicate node")
	ErrCycle        = errors.New("dag: cycle detected")
	ErrSelfEdge     = errors.New("dag: self edge")
	ErrMissingNodes = errors.New("dag: edge references missing node")
)

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:    map[string]*Node{},
		children: map[string]map[string]bool{},
		parents:  map[string]map[string]bool{},
	}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, c := range g.children {
		n += len(c)
	}
	return n
}

// AddNode inserts a node; the ID must be unique.
func (g *Graph) AddNode(n *Node) error {
	if n == nil || n.ID == "" {
		return errors.New("dag: nil or unnamed node")
	}
	if _, dup := g.nodes[n.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDupNode, n.ID)
	}
	g.nodes[n.ID] = n
	g.children[n.ID] = map[string]bool{}
	g.parents[n.ID] = map[string]bool{}
	return nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// AddEdge adds a dependency edge from -> to ("to depends on from"). Both
// nodes must exist and the edge must not create a cycle.
func (g *Graph) AddEdge(from, to string) error {
	if from == to {
		return fmt.Errorf("%w: %q", ErrSelfEdge, from)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, to)
	}
	if g.children[from][to] {
		return nil // idempotent
	}
	// Reject cycles: "to" must not reach "from".
	if g.reaches(to, from) {
		return fmt.Errorf("%w: %s -> %s", ErrCycle, from, to)
	}
	g.children[from][to] = true
	g.parents[to][from] = true
	return nil
}

// reaches reports whether a path exists from src to dst.
func (g *Graph) reaches(src, dst string) bool {
	if src == dst {
		return true
	}
	seen := map[string]bool{src: true}
	stack := []string{src}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		//nvolint:ignore mapiter reachability is a boolean query; worklist visit order cannot change the result
		for next := range g.children[cur] {
			if next == dst {
				return true
			}
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to string) bool { return g.children[from][to] }

// RemoveNode deletes a node and all its edges.
func (g *Graph) RemoveNode(id string) error {
	if _, ok := g.nodes[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchNode, id)
	}
	for c := range g.children[id] {
		delete(g.parents[c], id)
	}
	for p := range g.parents[id] {
		delete(g.children[p], id)
	}
	delete(g.nodes, id)
	delete(g.children, id)
	delete(g.parents, id)
	return nil
}

// sortedKeys returns map keys in sorted order for deterministic iteration.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Nodes returns all node IDs, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Children returns the IDs depending on id, sorted.
func (g *Graph) Children(id string) []string { return sortedKeys(g.children[id]) }

// Parents returns the IDs id depends on, sorted.
func (g *Graph) Parents(id string) []string { return sortedKeys(g.parents[id]) }

// Roots returns nodes with no parents, sorted.
func (g *Graph) Roots() []string {
	var out []string
	for id := range g.nodes {
		if len(g.parents[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Leaves returns nodes with no children, sorted.
func (g *Graph) Leaves() []string {
	var out []string
	for id := range g.nodes {
		if len(g.children[id]) == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// TopoSort returns the nodes in a deterministic topological order (Kahn's
// algorithm with lexicographic tie-breaking).
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.parents[id])
	}
	var ready []string
	for id, d := range indeg {
		if d == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		cur := ready[0]
		ready = ready[1:]
		order = append(order, cur)
		var unlocked []string
		for c := range g.children[cur] {
			indeg[c]--
			if indeg[c] == 0 {
				unlocked = append(unlocked, c)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(order) != len(g.nodes) {
		return nil, ErrCycle
	}
	return order, nil
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Levels assigns each node its depth (longest path from any root) and
// returns the nodes grouped by level. Level 0 holds the roots.
func (g *Graph) Levels() ([][]string, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	depth := map[string]int{}
	maxDepth := 0
	for _, id := range order {
		d := 0
		for p := range g.parents[id] {
			if depth[p]+1 > d {
				d = depth[p] + 1
			}
		}
		depth[id] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]string, maxDepth+1)
	for _, id := range order {
		levels[depth[id]] = append(levels[depth[id]], id)
	}
	for _, l := range levels {
		sort.Strings(l)
	}
	return levels, nil
}

// Ancestors returns every node from which id is reachable.
func (g *Graph) Ancestors(id string) []string {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(cur string) {
		for p := range g.parents[cur] {
			if !seen[p] {
				seen[p] = true
				walk(p)
			}
		}
	}
	walk(id)
	return sortedKeys(seen)
}

// Descendants returns every node reachable from id.
func (g *Graph) Descendants(id string) []string {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(cur string) {
		for c := range g.children[cur] {
			if !seen[c] {
				seen[c] = true
				walk(c)
			}
		}
	}
	walk(id)
	return sortedKeys(seen)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New()
	for id, n := range g.nodes {
		attrs := make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			attrs[k] = v
		}
		out.nodes[id] = &Node{ID: n.ID, Type: n.Type, Attrs: attrs}
		out.children[id] = map[string]bool{}
		out.parents[id] = map[string]bool{}
	}
	for from, cs := range g.children {
		for to := range cs {
			out.children[from][to] = true
			out.parents[to][from] = true
		}
	}
	return out
}

// DOT renders the graph in Graphviz dot syntax, deterministically.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, id := range g.Nodes() {
		n := g.nodes[id]
		fmt.Fprintf(&b, "  %q [label=%q];\n", id, id+"\\n"+n.Type)
	}
	for _, from := range g.Nodes() {
		for _, to := range g.Children(from) {
			fmt.Fprintf(&b, "  %q -> %q;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// CountByType tallies nodes per Type, a convenience the planners and
// experiment reports use constantly.
func (g *Graph) CountByType() map[string]int {
	out := map[string]int{}
	for _, n := range g.nodes {
		out[n.Type]++
	}
	return out
}
