package dag

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chain builds a -> b -> c ... for the given IDs.
func chain(t *testing.T, ids ...string) *Graph {
	t.Helper()
	g := New()
	for _, id := range ids {
		if err := g.AddNode(&Node{ID: id, Type: "compute"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ids); i++ {
		if err := g.AddEdge(ids[i-1], ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddNodeErrors(t *testing.T) {
	g := New()
	if err := g.AddNode(nil); err == nil {
		t.Error("nil node must fail")
	}
	if err := g.AddNode(&Node{}); err == nil {
		t.Error("unnamed node must fail")
	}
	if err := g.AddNode(&Node{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{ID: "a"}); err == nil {
		t.Error("duplicate node must fail")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := chain(t, "a", "b")
	if err := g.AddEdge("a", "a"); err == nil {
		t.Error("self edge must fail")
	}
	if err := g.AddEdge("a", "zz"); err == nil {
		t.Error("missing node must fail")
	}
	if err := g.AddEdge("zz", "a"); err == nil {
		t.Error("missing node must fail")
	}
	// Idempotent re-add.
	if err := g.AddEdge("a", "b"); err != nil {
		t.Errorf("re-adding existing edge: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
}

func TestCycleRejection(t *testing.T) {
	g := chain(t, "a", "b", "c")
	if err := g.AddEdge("c", "a"); err == nil {
		t.Error("cycle must be rejected")
	}
	if err := g.AddEdge("b", "a"); err == nil {
		t.Error("2-cycle must be rejected")
	}
	// Graph must be unchanged after rejected edges.
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d after rejections, want 2", g.NumEdges())
	}
}

func TestTopoSortChain(t *testing.T) {
	g := chain(t, "d1", "d2", "d3")
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"d1", "d2", "d3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTopoSortDeterministicAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := New()
		n := 30
		for i := 0; i < n; i++ {
			_ = g.AddNode(&Node{ID: fmt.Sprintf("n%02d", i)})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.1 {
					_ = g.AddEdge(fmt.Sprintf("n%02d", i), fmt.Sprintf("n%02d", j))
				}
			}
		}
		o1, err := g.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		o2, _ := g.TopoSort()
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatal("topo sort not deterministic")
			}
		}
		pos := map[string]int{}
		for i, id := range o1 {
			pos[id] = i
		}
		for _, from := range g.Nodes() {
			for _, to := range g.Children(from) {
				if pos[from] >= pos[to] {
					t.Fatalf("edge %s->%s violated by order", from, to)
				}
			}
		}
	}
}

func TestTopoSortCycleViaInternalState(t *testing.T) {
	// Force a cycle bypassing AddEdge's check to prove TopoSort detects it.
	g := chain(t, "a", "b")
	g.children["b"]["a"] = true
	g.parents["a"]["b"] = true
	if _, err := g.TopoSort(); err == nil {
		t.Error("TopoSort must detect cycles")
	}
	if _, err := g.Levels(); err == nil {
		t.Error("Levels must propagate cycle errors")
	}
}

func TestRootsLeaves(t *testing.T) {
	g := chain(t, "a", "b", "c")
	_ = g.AddNode(&Node{ID: "x"})
	roots := g.Roots()
	if len(roots) != 2 || roots[0] != "a" || roots[1] != "x" {
		t.Errorf("roots = %v", roots)
	}
	leaves := g.Leaves()
	if len(leaves) != 2 || leaves[0] != "c" || leaves[1] != "x" {
		t.Errorf("leaves = %v", leaves)
	}
}

func TestLevels(t *testing.T) {
	// diamond: a -> b, a -> c, b -> d, c -> d
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		_ = g.AddNode(&Node{ID: id})
	}
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("a", "c")
	_ = g.AddEdge("b", "d")
	_ = g.AddEdge("c", "d")
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if levels[0][0] != "a" || len(levels[1]) != 2 || levels[2][0] != "d" {
		t.Errorf("levels = %v", levels)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := chain(t, "a", "b", "c", "d")
	anc := g.Ancestors("c")
	if len(anc) != 2 || anc[0] != "a" || anc[1] != "b" {
		t.Errorf("ancestors = %v", anc)
	}
	desc := g.Descendants("b")
	if len(desc) != 2 || desc[0] != "c" || desc[1] != "d" {
		t.Errorf("descendants = %v", desc)
	}
	if len(g.Ancestors("a")) != 0 || len(g.Descendants("d")) != 0 {
		t.Error("root/leaf must have empty ancestors/descendants")
	}
}

func TestRemoveNode(t *testing.T) {
	g := chain(t, "a", "b", "c")
	if err := g.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 || g.NumEdges() != 0 {
		t.Errorf("after removal: %d nodes %d edges", g.Len(), g.NumEdges())
	}
	if err := g.RemoveNode("b"); err == nil {
		t.Error("double removal must fail")
	}
	// Remaining structure intact.
	if _, ok := g.Node("a"); !ok {
		t.Error("node a lost")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := chain(t, "a", "b")
	n, _ := g.Node("a")
	n.SetAttr("site", "isi")
	c := g.Clone()
	cn, _ := c.Node("a")
	cn.SetAttr("site", "fnal")
	if n.Attr("site") != "isi" {
		t.Error("clone shares attr maps")
	}
	_ = c.RemoveNode("b")
	if g.Len() != 2 {
		t.Error("clone shares node maps")
	}
	if c.NumEdges() != 0 || g.NumEdges() != 1 {
		t.Error("clone shares edges")
	}
}

func TestNodeAttrs(t *testing.T) {
	n := &Node{ID: "x"}
	if n.Attr("k") != "" {
		t.Error("missing attr must be empty")
	}
	n.SetAttr("k", "v")
	if n.Attr("k") != "v" {
		t.Error("attr lost")
	}
}

func TestDOT(t *testing.T) {
	g := chain(t, "a", "b")
	dot := g.DOT("wf")
	for _, want := range []string{`digraph "wf"`, `"a" -> "b";`, `"a" [label=`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestCountByType(t *testing.T) {
	g := New()
	_ = g.AddNode(&Node{ID: "1", Type: "compute"})
	_ = g.AddNode(&Node{ID: "2", Type: "compute"})
	_ = g.AddNode(&Node{ID: "3", Type: "transfer"})
	c := g.CountByType()
	if c["compute"] != 2 || c["transfer"] != 1 {
		t.Errorf("counts = %v", c)
	}
}

func TestAcyclicInvariantProperty(t *testing.T) {
	// Whatever random edges we try to add, the graph always topo-sorts.
	f := func(edges []uint8) bool {
		g := New()
		const n = 12
		for i := 0; i < n; i++ {
			_ = g.AddNode(&Node{ID: fmt.Sprintf("n%d", i)})
		}
		for k := 0; k+1 < len(edges); k += 2 {
			from := fmt.Sprintf("n%d", int(edges[k])%n)
			to := fmt.Sprintf("n%d", int(edges[k+1])%n)
			_ = g.AddEdge(from, to) // errors (cycles, self) are expected
		}
		_, err := g.TopoSort()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTopoSort(b *testing.B) {
	g := New()
	const n = 1000
	for i := 0; i < n; i++ {
		_ = g.AddNode(&Node{ID: fmt.Sprintf("n%04d", i)})
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := i + 1 + rng.Intn(n)
			if j < n {
				_ = g.AddEdge(fmt.Sprintf("n%04d", i), fmt.Sprintf("n%04d", j))
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddEdgeWithCycleCheck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := New()
		const n = 200
		for j := 0; j < n; j++ {
			_ = g.AddNode(&Node{ID: fmt.Sprintf("n%03d", j)})
		}
		b.StartTimer()
		for j := 1; j < n; j++ {
			_ = g.AddEdge(fmt.Sprintf("n%03d", j-1), fmt.Sprintf("n%03d", j))
		}
	}
}

func TestHasEdgeAndParents(t *testing.T) {
	g := chain(t, "a", "b", "c")
	if !g.HasEdge("a", "b") || g.HasEdge("b", "a") || g.HasEdge("a", "c") {
		t.Error("HasEdge wrong")
	}
	if p := g.Parents("b"); len(p) != 1 || p[0] != "a" {
		t.Errorf("Parents(b) = %v", p)
	}
	if p := g.Parents("a"); len(p) != 0 {
		t.Errorf("Parents(a) = %v", p)
	}
}
