// DAG file serialization: the on-disk twin of a concrete workflow, written at
// plan time so a crashed run can be resumed without replanning. Re-running
// Pegasus after a crash would produce a different concrete DAG (the RLS-based
// reduction prunes newly-materialized files and site selection consumes the
// rng in job order), so the resumed execution instead reloads the exact graph
// the journal's node IDs refer to.
//
// The format is line-oriented and deterministic (nodes and attributes
// sorted), with every token quoted so IDs, attribute values, and sites
// round-trip byte-exactly:
//
//	DAGFILE v1
//	NODE <id> <type>
//	ATTR <id> <key> <value>
//	DONE <id>
//	EDGE <parent> <child>
//
// DONE lines mark nodes a rescue file records as already completed; a plain
// plan-time snapshot has none.
package dagman

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dag"
)

// dagFileHeader identifies the format; bump the version on layout changes.
const dagFileHeader = "DAGFILE v1"

// WriteDAG serializes g (and an optional set of already-done node IDs) in the
// deterministic text format above.
func WriteDAG(w io.Writer, g *dag.Graph, done map[string]bool) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, dagFileHeader)
	for _, id := range g.Nodes() {
		n, _ := g.Node(id)
		fmt.Fprintf(bw, "NODE %s %s\n", strconv.Quote(n.ID), strconv.Quote(n.Type))
		for _, k := range sortedAttrKeys(n.Attrs) {
			fmt.Fprintf(bw, "ATTR %s %s %s\n",
				strconv.Quote(n.ID), strconv.Quote(k), strconv.Quote(n.Attrs[k]))
		}
	}
	for _, id := range g.Nodes() {
		if done[id] {
			fmt.Fprintf(bw, "DONE %s\n", strconv.Quote(id))
		}
	}
	for _, id := range g.Nodes() {
		for _, c := range g.Children(id) {
			fmt.Fprintf(bw, "EDGE %s %s\n", strconv.Quote(id), strconv.Quote(c))
		}
	}
	return bw.Flush()
}

// WriteDAGFile writes the serialized DAG to path, fsyncing before close so
// the snapshot survives the crashes it exists to recover from.
func WriteDAGFile(path string, g *dag.Graph, done map[string]bool) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := WriteDAG(f, g, done); err != nil {
		_ = f.Close() // the write error is the failure being reported
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the failure being reported
		return err
	}
	return f.Close()
}

// ReadDAG parses the text format back into a graph and the set of DONE nodes.
func ReadDAG(r io.Reader) (*dag.Graph, map[string]bool, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("dagman: empty DAG file")
	}
	if sc.Text() != dagFileHeader {
		return nil, nil, fmt.Errorf("dagman: bad DAG file header %q", sc.Text())
	}
	g := dag.New()
	done := map[string]bool{}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		op, rest, _ := strings.Cut(line, " ")
		fields, err := splitQuoted(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("dagman: DAG file line %d: %w", lineNo, err)
		}
		switch op {
		case "NODE":
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: NODE wants 2 fields, got %d", lineNo, len(fields))
			}
			if err := g.AddNode(&dag.Node{ID: fields[0], Type: fields[1]}); err != nil {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: %w", lineNo, err)
			}
		case "ATTR":
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: ATTR wants 3 fields, got %d", lineNo, len(fields))
			}
			n, ok := g.Node(fields[0])
			if !ok {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: ATTR for unknown node %q", lineNo, fields[0])
			}
			n.SetAttr(fields[1], fields[2])
		case "DONE":
			if len(fields) != 1 {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: DONE wants 1 field, got %d", lineNo, len(fields))
			}
			if _, ok := g.Node(fields[0]); !ok {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: DONE for unknown node %q", lineNo, fields[0])
			}
			done[fields[0]] = true
		case "EDGE":
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: EDGE wants 2 fields, got %d", lineNo, len(fields))
			}
			if err := g.AddEdge(fields[0], fields[1]); err != nil {
				return nil, nil, fmt.Errorf("dagman: DAG file line %d: %w", lineNo, err)
			}
		default:
			return nil, nil, fmt.Errorf("dagman: DAG file line %d: unknown directive %q", lineNo, op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return g, done, nil
}

// ReadDAGFile is ReadDAG over the file at path.
func ReadDAGFile(path string) (*dag.Graph, map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	//nvolint:ignore errclose read-only handle; there are no buffered writes a failed close could lose
	defer f.Close()
	return ReadDAG(f)
}

// WriteRescueFile serializes the rescue DAG of a finished-but-failed report —
// the failed and never-run subgraph a later submission resumes from, the
// on-disk analogue of Condor DAGMan's rescue files.
func WriteRescueFile(path string, g *dag.Graph, report *Report) error {
	return WriteDAGFile(path, report.RescueDAG(g), nil)
}

// sortedAttrKeys returns the attribute keys in deterministic order.
func sortedAttrKeys(attrs map[string]string) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// splitQuoted splits a run of space-separated Go-quoted tokens.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		if s[0] != '"' {
			return nil, fmt.Errorf("unquoted token at %q", s)
		}
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated quote at %q", s)
		}
		tok, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad token %q: %w", s[:end+1], err)
		}
		out = append(out, tok)
		s = s[end+1:]
	}
	return out, nil
}
