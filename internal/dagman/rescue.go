package dagman

import (
	"fmt"

	"repro/internal/condor"
	"repro/internal/dag"
)

// ExecuteWithRescue runs the workflow and, when nodes fail permanently,
// resubmits the rescue DAG — exactly the operational recovery DAGMan's
// rescue files enable — up to maxRounds additional rounds. Completed nodes
// never re-run; each round gets a fresh retry budget. newSim supplies a
// scheduler per round (the first round's simulator clock carries over into
// the merged report's makespan accounting per round).
//
// The merged report reflects the final state of every node: a node that
// failed in round one and succeeded in round two counts as done, with its
// attempts accumulated across rounds.
func ExecuteWithRescue(g *dag.Graph, runner Runner, newSim func() (*condor.Simulator, error),
	opt Options, maxRounds int) (*Report, error) {
	if newSim == nil {
		return nil, ErrNilInput
	}
	sim, err := newSim()
	if err != nil {
		return nil, err
	}
	report, err := Execute(g, runner, sim, opt)
	if err != nil {
		return nil, err
	}

	current := g
	for round := 0; round < maxRounds && !report.Succeeded(); round++ {
		rescue := report.RescueDAG(current)
		if rescue.Len() == 0 {
			break
		}
		sim, err := newSim()
		if err != nil {
			return nil, err
		}
		rescueReport, err := Execute(rescue, runner, sim, opt)
		if err != nil {
			return nil, fmt.Errorf("dagman: rescue round %d: %w", round+1, err)
		}
		mergeReports(report, rescueReport)
		current = rescue
	}
	return report, nil
}

// mergeReports folds a rescue round's results into the cumulative report.
func mergeReports(total, round *Report) {
	for id, res := range round.Results {
		prev := total.Results[id]
		attempts := res.Attempts
		if prev != nil {
			attempts += prev.Attempts
		}
		merged := *res
		merged.Attempts = attempts
		total.Results[id] = &merged
	}
	total.Makespan += round.Makespan
	total.ScheduleEvents += round.ScheduleEvents
	total.ClusteredTasks += round.ClusteredTasks
	total.ClusteredNodes += round.ClusteredNodes
	total.Done, total.Failed, total.Unrun = 0, 0, 0
	for _, res := range total.Results {
		switch res.State {
		case StateDone:
			total.Done++
		case StateFailed:
			total.Failed++
		default:
			total.Unrun++
		}
	}
}
