package dagman

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
	"repro/internal/journal"
)

// fanGraph builds k independent leaf nodes — the galMorph layer's shape.
func fanGraph(t testing.TB, k int) *dag.Graph {
	t.Helper()
	g := dag.New()
	for i := 0; i < k; i++ {
		if err := g.AddNode(&dag.Node{ID: fmt.Sprintf("leaf%03d", i), Type: "compute"}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// countSink records every journal entry in memory.
type countSink struct{ recs []journal.Record }

func (c *countSink) Append(r journal.Record) error {
	c.recs = append(c.recs, r)
	return nil
}

// clusterRunner marks every node clusterable at one site and counts how many
// times each node's Run executed.
func clusterRunner(runs map[string]int, failOnce map[string]bool) Runner {
	return func(n *dag.Node, attempt int) (Spec, error) {
		id := n.ID
		return Spec{Site: "usc", Cost: time.Second, ClusterKey: "leaf", Run: func() error {
			runs[id]++
			if failOnce[id] && runs[id] == 1 {
				return errors.New("transient fault")
			}
			return nil
		}}, nil
	}
}

func TestClusteringReducesScheduleEvents(t *testing.T) {
	const k = 32
	for _, tc := range []struct {
		clusterSize int
		wantEvents  int
	}{
		{clusterSize: 0, wantEvents: k},  // legacy: one task per node
		{clusterSize: 16, wantEvents: 2}, // 32 nodes / 16 per batch
	} {
		g := fanGraph(t, k)
		runs := map[string]int{}
		sim := newSim(t, condor.Pool{Name: "usc", Slots: 4})
		rep, err := Execute(g, clusterRunner(runs, nil), sim, Options{ClusterSize: tc.clusterSize})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Succeeded() || rep.Done != k {
			t.Fatalf("clusterSize=%d: report %+v", tc.clusterSize, rep)
		}
		if rep.ScheduleEvents != tc.wantEvents {
			t.Errorf("clusterSize=%d: %d schedule events, want %d",
				tc.clusterSize, rep.ScheduleEvents, tc.wantEvents)
		}
		for id, n := range runs {
			if n != 1 {
				t.Errorf("clusterSize=%d: node %s ran %d times, want 1", tc.clusterSize, id, n)
			}
		}
		if len(runs) != k {
			t.Errorf("clusterSize=%d: %d nodes ran, want %d", tc.clusterSize, len(runs), k)
		}
	}
}

// TestClusteringAmortizesSubmitOverhead is the tentpole's makespan claim:
// with the 2003 Condor-G serialized submission cost modelled, batching 16
// jobs per task beats one-task-per-job end to end.
func TestClusteringAmortizesSubmitOverhead(t *testing.T) {
	const k = 64
	run := func(clusterSize int) time.Duration {
		g := fanGraph(t, k)
		sim := newSim(t, condor.Pool{Name: "usc", Slots: 8})
		sim.SetSubmitOverhead(2 * time.Second)
		rep, err := Execute(g, clusterRunner(map[string]int{}, nil), sim,
			Options{ClusterSize: clusterSize})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Succeeded() {
			t.Fatalf("clusterSize=%d failed: %+v", clusterSize, rep)
		}
		return rep.Makespan
	}
	serial := run(0)
	clustered := run(16)
	if clustered >= serial {
		t.Errorf("clustered makespan %v >= serial %v; clustering should amortize submit overhead",
			clustered, serial)
	}
}

// TestClusterInnerFailureSettlesIndividually: one bad node inside a batch
// retries alone; its 15 batch-mates complete once and never re-run.
func TestClusterInnerFailureSettlesIndividually(t *testing.T) {
	const k = 16
	g := fanGraph(t, k)
	runs := map[string]int{}
	sink := &countSink{}
	sim := newSim(t, condor.Pool{Name: "usc", Slots: 4})
	rep, err := Execute(g, clusterRunner(runs, map[string]bool{"leaf007": true}), sim,
		Options{ClusterSize: k, MaxRetries: 2, Journal: sink})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || rep.Done != k {
		t.Fatalf("report %+v", rep)
	}
	for id, n := range runs {
		want := 1
		if id == "leaf007" {
			want = 2
		}
		if n != want {
			t.Errorf("node %s ran %d times, want %d", id, n, want)
		}
	}
	// Journal stays per inner node: every node has its own submitted and
	// completed records, and the faulty one a retried record.
	perKind := map[string]map[string]int{}
	for _, r := range sink.recs {
		if perKind[r.Kind] == nil {
			perKind[r.Kind] = map[string]int{}
		}
		perKind[r.Kind][r.Node]++
	}
	for i := 0; i < k; i++ {
		id := fmt.Sprintf("leaf%03d", i)
		if perKind[journal.KindCompleted][id] != 1 {
			t.Errorf("node %s has %d completed records, want 1", id, perKind[journal.KindCompleted][id])
		}
		wantSub := 1
		if id == "leaf007" {
			wantSub = 2
		}
		if perKind[journal.KindSubmitted][id] != wantSub {
			t.Errorf("node %s has %d submitted records, want %d",
				id, perKind[journal.KindSubmitted][id], wantSub)
		}
	}
	if perKind[journal.KindRetried]["leaf007"] != 1 {
		t.Errorf("faulty node has %d retried records, want 1", perKind[journal.KindRetried]["leaf007"])
	}
}

// TestClusterRespectsDependencies: clustering must not run a child before its
// parent — only ready nodes batch together.
func TestClusterRespectsDependencies(t *testing.T) {
	g := dag.New()
	for _, id := range []string{"p1", "p2", "c1", "c2"} {
		if err := g.AddNode(&dag.Node{ID: id, Type: "compute"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge("p1", "c1"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("p2", "c2"); err != nil {
		t.Fatal(err)
	}
	var order []string
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		id := n.ID
		return Spec{Site: "usc", Cost: time.Second, ClusterKey: "leaf", Run: func() error {
			order = append(order, id)
			return nil
		}}, nil
	}
	sim := newSim(t, condor.Pool{Name: "usc", Slots: 2})
	rep, err := Execute(g, runner, sim, Options{ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report %+v", rep)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos["c1"] < pos["p1"] || pos["c2"] < pos["p2"] {
		t.Errorf("child ran before parent: order %v", order)
	}
	// Parents batch together, children batch together: two schedule events.
	if rep.ScheduleEvents != 2 {
		t.Errorf("%d schedule events, want 2 (parents batch, children batch)", rep.ScheduleEvents)
	}
}
