package dagman

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
)

func newSim(t testing.TB, pools ...condor.Pool) *condor.Simulator {
	t.Helper()
	if len(pools) == 0 {
		pools = []condor.Pool{{Name: "usc", Slots: 4}, {Name: "wisc", Slots: 4}}
	}
	s, err := condor.NewSimulator(pools...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// chainGraph builds a linear workflow n1 -> n2 -> ... -> nk.
func chainGraph(t testing.TB, k int) *dag.Graph {
	t.Helper()
	g := dag.New()
	for i := 1; i <= k; i++ {
		if err := g.AddNode(&dag.Node{ID: fmt.Sprintf("n%d", i), Type: "compute"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i <= k; i++ {
		if err := g.AddEdge(fmt.Sprintf("n%d", i-1), fmt.Sprintf("n%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func unitRunner(order *[]string) Runner {
	return func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if order != nil {
				*order = append(*order, n.ID)
			}
			return nil
		}}, nil
	}
}

func TestExecuteValidation(t *testing.T) {
	sim := newSim(t)
	g := chainGraph(t, 1)
	if _, err := Execute(nil, unitRunner(nil), sim, Options{}); err == nil {
		t.Error("nil graph must fail")
	}
	if _, err := Execute(g, nil, sim, Options{}); err == nil {
		t.Error("nil runner must fail")
	}
	if _, err := Execute(g, unitRunner(nil), nil, Options{}); err == nil {
		t.Error("nil simulator must fail")
	}
}

func TestExecuteEmptyGraph(t *testing.T) {
	rep, err := Execute(dag.New(), unitRunner(nil), newSim(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || rep.Done != 0 {
		t.Errorf("empty graph report = %+v", rep)
	}
}

func TestExecuteChainOrderAndMakespan(t *testing.T) {
	var order []string
	g := chainGraph(t, 5)
	rep, err := Execute(g, unitRunner(&order), newSim(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() || rep.Done != 5 {
		t.Fatalf("report = %+v", rep)
	}
	for i, id := range []string{"n1", "n2", "n3", "n4", "n5"} {
		if order[i] != id {
			t.Fatalf("execution order = %v", order)
		}
	}
	// Chain of 5 unit jobs: makespan exactly 5s regardless of slots.
	if rep.Makespan != 5*time.Second {
		t.Errorf("makespan = %v", rep.Makespan)
	}
}

func TestExecuteFanParallelism(t *testing.T) {
	// 8 independent unit jobs on 8 total slots -> makespan 1s.
	g := dag.New()
	for i := 0; i < 8; i++ {
		_ = g.AddNode(&dag.Node{ID: fmt.Sprintf("j%d", i), Type: "compute"})
	}
	rep, err := Execute(g, unitRunner(nil), newSim(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != time.Second {
		t.Errorf("makespan = %v, want 1s", rep.Makespan)
	}
}

func TestRetrySucceedsOnSecondAttempt(t *testing.T) {
	g := chainGraph(t, 2)
	failures := map[string]int{"n1": 1} // n1 fails once then succeeds
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if failures[n.ID] > 0 {
				failures[n.ID]--
				return errors.New("transient")
			}
			return nil
		}}, nil
	}
	rep, err := Execute(g, runner, newSim(t), Options{MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Results["n1"].Attempts != 2 {
		t.Errorf("n1 attempts = %d", rep.Results["n1"].Attempts)
	}
	// Retry costs show in the makespan: n1 ran twice.
	if rep.Makespan != 3*time.Second {
		t.Errorf("makespan = %v, want 3s", rep.Makespan)
	}
}

func TestPermanentFailureMarksDescendantsUnrun(t *testing.T) {
	// Diamond: a -> b, a -> c, b+c -> d; b always fails.
	g := dag.New()
	for _, id := range []string{"a", "b", "c", "d"} {
		_ = g.AddNode(&dag.Node{ID: id, Type: "compute"})
	}
	_ = g.AddEdge("a", "b")
	_ = g.AddEdge("a", "c")
	_ = g.AddEdge("b", "d")
	_ = g.AddEdge("c", "d")

	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if n.ID == "b" {
				return errors.New("always broken")
			}
			return nil
		}}, nil
	}
	rep, err := Execute(g, runner, newSim(t), Options{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded() {
		t.Fatal("must not succeed")
	}
	if rep.Results["b"].State != StateFailed || rep.Results["b"].Attempts != 2 {
		t.Errorf("b = %+v", rep.Results["b"])
	}
	if rep.Results["d"].State != StateUnrun {
		t.Errorf("d = %+v", rep.Results["d"])
	}
	// c is independent of b and must still complete.
	if rep.Results["c"].State != StateDone {
		t.Errorf("c = %+v", rep.Results["c"])
	}
	if rep.Done != 2 || rep.Failed != 1 || rep.Unrun != 1 {
		t.Errorf("counts = %+v", rep)
	}

	rescue := rep.RescueDAG(g)
	if rescue.Len() != 2 {
		t.Fatalf("rescue nodes = %v", rescue.Nodes())
	}
	if !rescue.HasEdge("b", "d") {
		t.Error("rescue DAG must keep b -> d")
	}
}

func TestRunnerErrorAborts(t *testing.T) {
	g := chainGraph(t, 2)
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{}, errors.New("no recipe")
	}
	if _, err := Execute(g, runner, newSim(t), Options{}); err == nil {
		t.Error("runner error must abort execution")
	}
}

func TestSitePinnedExecution(t *testing.T) {
	g := chainGraph(t, 3)
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Site: "wisc", Cost: time.Second, Run: func() error { return nil }}, nil
	}
	rep, err := Execute(g, runner, newSim(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id, res := range rep.Results {
		if res.Site != "wisc" {
			t.Errorf("%s ran at %s", id, res.Site)
		}
	}
}

func TestRetryOnDifferentSite(t *testing.T) {
	// The runner can steer retries away from a site it saw fail.
	g := dag.New()
	_ = g.AddNode(&dag.Node{ID: "job", Type: "compute"})
	var sites []string
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		site := "usc"
		if attempt > 1 {
			site = "wisc"
		}
		return Spec{Site: site, Cost: time.Second, Run: func() error {
			sites = append(sites, site)
			if site == "usc" {
				return errors.New("usc broken")
			}
			return nil
		}}, nil
	}
	rep, err := Execute(g, runner, newSim(t), Options{MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report = %+v", rep.Results["job"])
	}
	if len(sites) != 2 || sites[1] != "wisc" {
		t.Errorf("sites = %v", sites)
	}
	if rep.Results["job"].Site != "wisc" {
		t.Errorf("final site = %s", rep.Results["job"].Site)
	}
}

func TestCyclicGraphRejected(t *testing.T) {
	g := chainGraph(t, 2)
	// A cycle cannot be built through the public API; simulate a corrupted
	// graph by checking that Execute surfaces TopoSort's error path with a
	// self-made graph is impossible — instead verify Execute accepts only
	// DAGs by construction. Nothing to do here beyond the validation test.
	if _, err := g.TopoSort(); err != nil {
		t.Fatal("chain must be acyclic")
	}
}

func TestWideWorkflowThroughput(t *testing.T) {
	// 100 independent jobs, 8 slots -> makespan = ceil(100/8) seconds.
	g := dag.New()
	for i := 0; i < 100; i++ {
		_ = g.AddNode(&dag.Node{ID: fmt.Sprintf("j%03d", i), Type: "compute"})
	}
	rep, err := Execute(g, unitRunner(nil), newSim(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != 13*time.Second {
		t.Errorf("makespan = %v, want 13s", rep.Makespan)
	}
}

func TestNodeStateString(t *testing.T) {
	for s, want := range map[NodeState]string{
		StatePending: "pending", StateRunning: "running", StateDone: "done",
		StateFailed: "failed", StateUnrun: "unrun", NodeState(42): "NodeState(42)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func BenchmarkExecuteGalaxyFan561(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := dag.New()
		_ = g.AddNode(&dag.Node{ID: "concat", Type: "compute"})
		for j := 0; j < 561; j++ {
			id := fmt.Sprintf("m%d", j)
			_ = g.AddNode(&dag.Node{ID: id, Type: "compute"})
			_ = g.AddEdge(id, "concat")
		}
		sim, err := condor.NewSimulator(
			condor.Pool{Name: "usc", Slots: 20},
			condor.Pool{Name: "wisc", Slots: 30},
			condor.Pool{Name: "fnal", Slots: 20},
		)
		if err != nil {
			b.Fatal(err)
		}
		runner := func(n *dag.Node, attempt int) (Spec, error) {
			return Spec{Cost: 4 * time.Second}, nil
		}
		rep, err := Execute(g, runner, sim, Options{})
		if err != nil || !rep.Succeeded() {
			b.Fatalf("rep=%+v err=%v", rep, err)
		}
	}
}

func TestMaxInFlightThrottle(t *testing.T) {
	// 12 independent unit jobs, 8 slots available, but DAGMan throttled to
	// 3 in-flight: makespan = ceil(12/3) = 4s and observed concurrency
	// never exceeds 3.
	g := dag.New()
	for i := 0; i < 12; i++ {
		_ = g.AddNode(&dag.Node{ID: fmt.Sprintf("j%02d", i), Type: "compute"})
	}
	sim := newSim(t) // 8 slots total
	maxSeen := 0
	inFlight := 0
	rep, err := Execute(g, unitRunner(nil), sim, Options{
		MaxInFlight: 3,
		Monitor: func(e Event) {
			switch e.Kind {
			case EventSubmitted:
				inFlight++
				if inFlight > maxSeen {
					maxSeen = inFlight
				}
			case EventCompleted, EventFailed:
				inFlight--
			}
		},
	})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	if maxSeen > 3 {
		t.Errorf("in-flight peaked at %d, cap was 3", maxSeen)
	}
	if rep.Makespan != 4*time.Second {
		t.Errorf("makespan = %v, want 4s", rep.Makespan)
	}
}

func TestMaxInFlightWithRetries(t *testing.T) {
	g := chainGraph(t, 4)
	failuresLeft := map[string]int{"n2": 1, "n3": 1}
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if failuresLeft[n.ID] > 0 {
				failuresLeft[n.ID]--
				return errors.New("flaky")
			}
			return nil
		}}, nil
	}
	rep, err := Execute(g, runner, newSim(t), Options{MaxRetries: 2, MaxInFlight: 1})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	if rep.Makespan != 6*time.Second { // 4 jobs + 2 retries, serialized
		t.Errorf("makespan = %v, want 6s", rep.Makespan)
	}
}

func TestRetryPolicyOverridesMaxRetries(t *testing.T) {
	g := chainGraph(t, 1)
	boom := errors.New("boom")
	failing := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error { return boom }}, nil
	}
	// The policy stops after 3 attempts even though MaxRetries allows 6 runs.
	rep, err := Execute(g, failing, newSim(t), Options{
		MaxRetries:  5,
		RetryPolicy: func(node string, attempt int, err error) bool { return attempt < 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := rep.Results["n1"]; res.State != StateFailed || res.Attempts != 3 {
		t.Fatalf("policy-limited node: %+v", res)
	}
	// A non-retryable error stops at attempt 1 regardless of MaxRetries.
	fatal := errors.New("fatal")
	fatalRunner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error { return fatal }}, nil
	}
	rep, err = Execute(g, fatalRunner, newSim(t), Options{
		MaxRetries: 5,
		RetryPolicy: func(node string, attempt int, err error) bool {
			return !errors.Is(err, fatal)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := rep.Results["n1"]; res.State != StateFailed || res.Attempts != 1 {
		t.Fatalf("fatal error must not retry: %+v", res)
	}
}

func TestEventRetriedStream(t *testing.T) {
	g := chainGraph(t, 1)
	attempts := 0
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			attempts++
			if attempts < 3 {
				return fmt.Errorf("flaky attempt %d", attempts)
			}
			return nil
		}}, nil
	}
	var events []Event
	rep, err := Execute(g, runner, newSim(t), Options{
		MaxRetries: 3,
		Monitor:    func(e Event) { events = append(events, e) },
	})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep = %+v, err = %v", rep, err)
	}
	var kinds []EventKind
	var retried []Event
	for _, e := range events {
		kinds = append(kinds, e.Kind)
		if e.Kind == EventRetried {
			retried = append(retried, e)
		}
	}
	want := []EventKind{EventSubmitted, EventRetried, EventSubmitted,
		EventRetried, EventSubmitted, EventCompleted}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v (stream %v)", i, kinds[i], want[i], kinds)
		}
	}
	// Retried events carry the failing attempt's number, error and site —
	// enough for a monitor to distinguish a retry from a fresh submission.
	for i, e := range retried {
		if e.Attempt != i+1 || e.Err == nil || e.Node != "n1" || e.Site == "" {
			t.Errorf("retried event %d incomplete: %+v", i, e)
		}
	}
	if EventRetried.String() != "retried" {
		t.Errorf("EventRetried.String() = %q", EventRetried.String())
	}
}

func TestRescueDAGEdgeCases(t *testing.T) {
	// Empty graph: empty report, empty rescue.
	empty := dag.New()
	rep, err := Execute(empty, unitRunner(nil), newSim(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := rep.RescueDAG(empty); r.Len() != 0 {
		t.Errorf("empty graph rescue has %d nodes", r.Len())
	}

	// Every node failed or unrun: the rescue is the whole workflow with its
	// edges intact.
	g := chainGraph(t, 3)
	failing := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error { return errors.New("x") }}, nil
	}
	rep, err = Execute(g, failing, newSim(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rescue := rep.RescueDAG(g)
	if rescue.Len() != 3 {
		t.Fatalf("all-failed rescue has %d nodes, want 3", rescue.Len())
	}
	if c := rescue.Children("n1"); len(c) != 1 || c[0] != "n2" {
		t.Errorf("rescue lost edge n1->n2: children = %v", c)
	}
	if c := rescue.Children("n2"); len(c) != 1 || c[0] != "n3" {
		t.Errorf("rescue lost edge n2->n3: children = %v", c)
	}

	// No node failed: the rescue is empty.
	rep, err = Execute(g, unitRunner(nil), newSim(t), Options{})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep = %+v, err = %v", rep, err)
	}
	if r := rep.RescueDAG(g); r.Len() != 0 {
		t.Errorf("all-done rescue has %d nodes", r.Len())
	}
}
