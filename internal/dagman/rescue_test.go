package dagman

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
)

func freshSim(t testing.TB) func() (*condor.Simulator, error) {
	t.Helper()
	return func() (*condor.Simulator, error) {
		return condor.NewSimulator(condor.Pool{Name: "p", Slots: 4})
	}
}

func TestExecuteWithRescueRecovers(t *testing.T) {
	// b fails in round 1 (all attempts), succeeds in round 2.
	g := chainGraph(t, 3) // n1 -> n2 -> n3
	failuresLeft := 2     // MaxRetries=1 gives 2 attempts per round
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if n.ID == "n2" && failuresLeft > 0 {
				failuresLeft--
				return errors.New("flaky")
			}
			return nil
		}}, nil
	}
	rep, err := ExecuteWithRescue(g, runner, freshSim(t), Options{MaxRetries: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Succeeded() {
		t.Fatalf("report = done %d failed %d unrun %d", rep.Done, rep.Failed, rep.Unrun)
	}
	// n2 ran twice in round 1 and once in round 2.
	if rep.Results["n2"].Attempts != 3 {
		t.Errorf("n2 attempts = %d, want 3", rep.Results["n2"].Attempts)
	}
	// n1 completed in round 1 and must not have re-run.
	if rep.Results["n1"].Attempts != 1 {
		t.Errorf("n1 attempts = %d, want 1", rep.Results["n1"].Attempts)
	}
	// n3 was unrun in round 1 and completed in round 2.
	if rep.Results["n3"].State != StateDone {
		t.Errorf("n3 = %+v", rep.Results["n3"])
	}
	if rep.Makespan <= 0 {
		t.Error("makespan must accumulate across rounds")
	}
}

func TestExecuteWithRescueGivesUp(t *testing.T) {
	g := chainGraph(t, 2)
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if n.ID == "n1" {
				return errors.New("permanently broken")
			}
			return nil
		}}, nil
	}
	rep, err := ExecuteWithRescue(g, runner, freshSim(t), Options{MaxRetries: 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded() {
		t.Fatal("must not succeed")
	}
	if rep.Results["n1"].State != StateFailed || rep.Results["n2"].State != StateUnrun {
		t.Errorf("states: n1=%v n2=%v", rep.Results["n1"].State, rep.Results["n2"].State)
	}
	// 1 initial + 3 rescue rounds = 4 attempts.
	if rep.Results["n1"].Attempts != 4 {
		t.Errorf("n1 attempts = %d, want 4", rep.Results["n1"].Attempts)
	}
}

func TestExecuteWithRescueZeroRounds(t *testing.T) {
	g := chainGraph(t, 1)
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error { return errors.New("x") }}, nil
	}
	rep, err := ExecuteWithRescue(g, runner, freshSim(t), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded() || rep.Results["n1"].Attempts != 1 {
		t.Errorf("zero rounds must behave like Execute: %+v", rep.Results["n1"])
	}
}

func TestExecuteWithRescueNilFactory(t *testing.T) {
	if _, err := ExecuteWithRescue(chainGraph(t, 1), unitRunner(nil), nil, Options{}, 1); err == nil {
		t.Error("nil factory must fail")
	}
}

func TestMonitorEvents(t *testing.T) {
	g := chainGraph(t, 2)
	failuresLeft := 1
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if n.ID == "n1" && failuresLeft > 0 {
				failuresLeft--
				return errors.New("flaky")
			}
			return nil
		}}, nil
	}
	var events []Event
	sim, err := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(g, runner, sim, Options{
		MaxRetries: 2,
		Monitor:    func(e Event) { events = append(events, e) },
	})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	// n1 submitted, retried, submitted, completed; n2 submitted, completed.
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[EventSubmitted] != 3 || kinds[EventRetried] != 1 || kinds[EventCompleted] != 2 {
		t.Errorf("event counts = %v (events: %+v)", kinds, events)
	}
	// Events carry monotone model times.
	last := time.Duration(-1)
	for _, e := range events {
		if e.At < last {
			t.Errorf("event times not monotone: %+v", events)
			break
		}
		last = e.At
	}
}

func TestMonitorFailedEvent(t *testing.T) {
	g := chainGraph(t, 1)
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error { return errors.New("x") }}, nil
	}
	var failed int
	sim, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 1})
	_, err := Execute(g, runner, sim, Options{
		Monitor: func(e Event) {
			if e.Kind == EventFailed {
				failed++
				if e.Err == nil {
					t.Error("failed event must carry the error")
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Errorf("failed events = %d", failed)
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventSubmitted: "submitted", EventCompleted: "completed",
		EventRetried: "retried", EventFailed: "failed",
		EventRestored: "restored", EventKind(9): "EventKind(9)",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q", int(k), k.String())
		}
	}
}

// sameGraph compares two graphs structurally: node set, types, attributes,
// and edges.
func sameGraph(t *testing.T, got, want *dag.Graph) {
	t.Helper()
	gotIDs, wantIDs := got.Nodes(), want.Nodes()
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("node count %d, want %d (%v vs %v)", len(gotIDs), len(wantIDs), gotIDs, wantIDs)
	}
	for i, id := range wantIDs {
		if gotIDs[i] != id {
			t.Fatalf("nodes %v, want %v", gotIDs, wantIDs)
		}
		gn, _ := got.Node(id)
		wn, _ := want.Node(id)
		if gn.Type != wn.Type {
			t.Errorf("node %s type %q, want %q", id, gn.Type, wn.Type)
		}
		if len(gn.Attrs) != len(wn.Attrs) {
			t.Errorf("node %s attrs %v, want %v", id, gn.Attrs, wn.Attrs)
		}
		for k, v := range wn.Attrs {
			if gn.Attrs[k] != v {
				t.Errorf("node %s attr %s = %q, want %q", id, k, gn.Attrs[k], v)
			}
		}
		gc, wc := got.Children(id), want.Children(id)
		if len(gc) != len(wc) {
			t.Fatalf("node %s children %v, want %v", id, gc, wc)
		}
		for j := range wc {
			if gc[j] != wc[j] {
				t.Fatalf("node %s children %v, want %v", id, gc, wc)
			}
		}
	}
}

// rescueRoundTrip serializes the report's rescue DAG, reloads it, and checks
// it equals the in-memory one.
func rescueRoundTrip(t *testing.T, g *dag.Graph, rep *Report) *dag.Graph {
	t.Helper()
	mem := rep.RescueDAG(g)
	path := filepath.Join(t.TempDir(), "rescue.dag")
	if err := WriteRescueFile(path, g, rep); err != nil {
		t.Fatal(err)
	}
	loaded, done, err := ReadDAGFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Errorf("rescue file carries DONE markers: %v", done)
	}
	sameGraph(t, loaded, mem)
	return loaded
}

func TestRescueRoundTripEmpty(t *testing.T) {
	// Fully successful run: the rescue DAG is empty, and so is its file twin.
	g := chainGraph(t, 3)
	sim, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	rep, err := Execute(g, unitRunner(nil), sim, Options{})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	loaded := rescueRoundTrip(t, g, rep)
	if loaded.Len() != 0 {
		t.Errorf("empty rescue reloaded with %d nodes", loaded.Len())
	}
}

func TestRescueRoundTripAllFailed(t *testing.T) {
	// Root fails permanently: every node is failed or unrun, so the rescue
	// DAG is the whole graph — and resuming it with a healed runner finishes.
	g := chainGraph(t, 4)
	broken := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error { return errors.New("dead") }}, nil
	}
	sim, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	rep, err := Execute(g, broken, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded() {
		t.Fatal("must fail")
	}
	loaded := rescueRoundTrip(t, g, rep)
	sameGraph(t, loaded, g)

	sim2, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	var order []string
	rep2, err := Execute(loaded, unitRunner(&order), sim2, Options{})
	if err != nil || !rep2.Succeeded() {
		t.Fatalf("resume rep=%+v err=%v", rep2, err)
	}
	if len(order) != 4 {
		t.Errorf("resume executed %v, want all 4 nodes", order)
	}
}

func TestRescueRoundTripPartial(t *testing.T) {
	// n2 of n1->n2->n3->n4 fails: the rescue DAG is {n2,n3,n4}, resuming the
	// reloaded file with a healed runner completes exactly those nodes.
	g := chainGraph(t, 4)
	sick := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if n.ID == "n2" {
				return errors.New("sick")
			}
			return nil
		}}, nil
	}
	sim, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	rep, err := Execute(g, sick, sim, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loaded := rescueRoundTrip(t, g, rep)
	wantNodes := []string{"n2", "n3", "n4"}
	gotNodes := loaded.Nodes()
	if len(gotNodes) != len(wantNodes) {
		t.Fatalf("rescue nodes %v, want %v", gotNodes, wantNodes)
	}
	for i := range wantNodes {
		if gotNodes[i] != wantNodes[i] {
			t.Fatalf("rescue nodes %v, want %v", gotNodes, wantNodes)
		}
	}

	sim2, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	var order []string
	rep2, err := Execute(loaded, unitRunner(&order), sim2, Options{})
	if err != nil || !rep2.Succeeded() {
		t.Fatalf("resume rep=%+v err=%v", rep2, err)
	}
	if len(order) != 3 || order[0] != "n2" {
		t.Errorf("resume executed %v, want [n2 n3 n4]", order)
	}
}
