package dagman

import (
	"fmt"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
)

// WaveStats aggregates execution across sequentially released waves. Unlike
// Report it carries no per-node results map — the whole point of wave
// execution is that scheduler state stays bounded by the largest single wave,
// not by the request.
type WaveStats struct {
	// Waves counts the graphs the source yielded (empty ones included).
	Waves int
	// Nodes counts concrete nodes across all waves.
	Nodes int
	// MaxWaveNodes is the largest single wave released to the scheduler —
	// the executor's peak live-graph footprint, the quantity the bounded-
	// memory design caps.
	MaxWaveNodes int

	Done     int
	Failed   int
	Unrun    int
	Restored int

	Makespan       time.Duration
	ScheduleEvents int
	ClusteredTasks int
	ClusteredNodes int
}

// WaveError reports a wave whose workflow failed permanently (after retries
// and rescue rounds), carrying the wave's graph and report so the caller can
// serialize a rescue DAG for exactly the nodes a resubmission must run.
type WaveError struct {
	Wave   int
	Graph  *dag.Graph
	Report *Report
}

func (e *WaveError) Error() string {
	return fmt.Sprintf("dagman: wave %d failed permanently: %d failed, %d unrun",
		e.Wave, e.Report.Failed, e.Report.Unrun)
}

// ExecuteWaves runs a sequence of bounded workflow waves back to back: next
// is called with 0, 1, 2, ... and returns each wave's concrete graph, or nil
// when the sequence is exhausted. Each wave executes to completion (with
// per-wave rescue rounds) before the next is even planned, so at most one
// wave's graph, report and scheduler state are live at a time — next can
// plan lazily and release memory behind itself.
//
// The Options are shared across waves: the same journal sink receives every
// wave's records in order, and Options.Completed restores finished nodes in
// whichever wave they reappear (IDs absent from a wave's graph are ignored,
// which is what makes one flat completed-set from a crashed run's journal
// safe to apply to every wave of the resumed run). Counters aggregate across
// waves; per-node Results are discarded wave by wave.
//
// A permanent wave failure stops the sequence with a *WaveError wrapping the
// failed wave's graph and report. Hard executor errors (an abort, a journal
// crash) propagate wrapped with the wave index, preserving errors.Is.
func ExecuteWaves(next func(wave int) (*dag.Graph, error), runner Runner,
	newSim func() (*condor.Simulator, error), opt Options, maxRounds int) (*WaveStats, error) {
	if next == nil || runner == nil || newSim == nil {
		return nil, ErrNilInput
	}
	ws := &WaveStats{}
	for w := 0; ; w++ {
		g, err := next(w)
		if err != nil {
			return ws, fmt.Errorf("dagman: planning wave %d: %w", w, err)
		}
		if g == nil {
			return ws, nil
		}
		ws.Waves++
		ws.Nodes += g.Len()
		if g.Len() > ws.MaxWaveNodes {
			ws.MaxWaveNodes = g.Len()
		}
		if g.Len() == 0 {
			continue // fully reduced away (e.g. a resumed wave already done)
		}
		rep, err := ExecuteWithRescue(g, runner, newSim, opt, maxRounds)
		if err != nil {
			return ws, fmt.Errorf("dagman: wave %d: %w", w, err)
		}
		ws.Done += rep.Done
		ws.Failed += rep.Failed
		ws.Unrun += rep.Unrun
		ws.Restored += rep.Restored
		ws.Makespan += rep.Makespan
		ws.ScheduleEvents += rep.ScheduleEvents
		ws.ClusteredTasks += rep.ClusteredTasks
		ws.ClusteredNodes += rep.ClusteredNodes
		if !rep.Succeeded() {
			return ws, &WaveError{Wave: w, Graph: g, Report: rep}
		}
	}
}
