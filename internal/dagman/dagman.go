// Package dagman executes concrete workflows the way Condor DAGMan does
// (Frey et al. 2001): it releases a node to the Condor-G scheduler only when
// all its parents have completed, retries failed nodes up to a configurable
// limit, and when nodes fail permanently produces a rescue DAG — the
// sub-workflow of failed and never-run nodes that a later submission can
// resume from.
//
// The actual behaviour of each node (computing morphology, moving files with
// GridFTP, registering replicas) is supplied by the caller as a Runner that
// maps concrete-workflow nodes to condor Tasks.
package dagman

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
	"repro/internal/journal"
)

// NodeState is the lifecycle state of one workflow node.
type NodeState int

// Node states.
const (
	StatePending NodeState = iota
	StateRunning
	StateDone
	StateFailed // exhausted retries
	StateUnrun  // never became runnable (upstream failure)
)

// String labels the state.
func (s NodeState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateUnrun:
		return "unrun"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Spec is the execution recipe for one node.
type Spec struct {
	Site string        // pool to run on ("" = matchmake)
	Cost time.Duration // model duration at unit speed
	Run  func() error  // side effects, executed at completion time
	// Lane routes the task to a scheduler lane; condor.LaneTransfer puts it
	// on the pool's dedicated transfer slots (when configured), so data
	// movement overlaps computation instead of competing for CPU slots.
	Lane string
	// ClusterKey, when non-empty and Options.ClusterSize > 1, marks the
	// node horizontally clusterable: ready nodes sharing (Site, ClusterKey)
	// are batched into a single Condor task of up to ClusterSize inner
	// jobs, amortizing the per-task scheduling overhead. Journal records,
	// monitoring events, retries and child release all remain per inner
	// node, so crash recovery and rescue DAGs are unaffected.
	ClusterKey string
}

// Runner maps a workflow node to its execution recipe. It is called once per
// attempt, so a retry can pick a different site.
type Runner func(n *dag.Node, attempt int) (Spec, error)

// EventKind classifies monitoring events (the "Monitoring" and "Log Files"
// arrows of the paper's Figure 2).
type EventKind int

// Event kinds.
const (
	EventSubmitted EventKind = iota
	EventCompleted
	EventRetried
	EventFailed // retries exhausted
	// EventRestored marks a node recovered as already-done from a journal
	// (Options.Completed); it never executed in this run.
	EventRestored
)

// String labels the kind.
func (k EventKind) String() string {
	switch k {
	case EventSubmitted:
		return "submitted"
	case EventCompleted:
		return "completed"
	case EventRetried:
		return "retried"
	case EventFailed:
		return "failed"
	case EventRestored:
		return "restored"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one monitoring record.
type Event struct {
	Kind    EventKind
	Node    string
	Site    string        // set on completion events
	Attempt int           // 1-based
	At      time.Duration // model time
	Err     error         // set on retried/failed
}

// Options tunes the executor.
type Options struct {
	// MaxRetries is the number of re-submissions after a failure (so a node
	// runs at most MaxRetries+1 times). DAGMan's default of retrying is the
	// prototype's primary infrastructure fault tolerance.
	MaxRetries int
	// Monitor, when set, receives every lifecycle event — the job-status
	// stream a portal's progress display consumes.
	Monitor func(Event)
	// MaxInFlight caps the number of simultaneously submitted nodes, like
	// DAGMan's -maxjobs throttle (0 = unlimited). Ready nodes beyond the
	// cap wait in submission order.
	MaxInFlight int
	// MaxInFlightFn, when set, replaces the static MaxInFlight with a cap
	// consulted at every submit and drain decision (0 = unlimited at that
	// instant). The fabric wires a lease's JobAllowance here so idle job
	// headroom lent by quota-blocked tenants widens the throttle while it
	// lasts and is reclaimed at the next poll.
	MaxInFlightFn func() int
	// RetryPolicy, when set, replaces the fixed MaxRetries rule: after a
	// failed attempt it decides whether the node runs again. attempt is the
	// 1-based attempt that just failed. Use resilience.Policy.DAGManPolicy
	// for budgeted backoff-aware decisions; nil keeps DAGMan's classic
	// count-based behaviour.
	RetryPolicy func(node string, attempt int, err error) bool
	// Journal, when set, receives a write-ahead record at every node state
	// transition, BEFORE the executor acts on the transition. A failed
	// append aborts the run (ErrAborted): a transition that cannot be made
	// durable must not happen, or replay-to-resume would re-run completed
	// side effects' descendants against a lying history. Nil journals
	// nothing at zero cost.
	Journal journal.Sink
	// Check, when set, is polled between scheduler events; a non-nil error
	// aborts the run cleanly (an abort record is journaled, ErrAborted is
	// returned). Wire a context with func() error { return ctx.Err() } to
	// make an abandoned request stop scheduling new nodes.
	Check func() error
	// Completed restores nodes a previous (crashed) run already finished:
	// they are marked done without executing, their children unlock, and
	// they surface as EventRestored. IDs not present in the graph are
	// ignored, so a journal replayed against a reduced or rescue DAG is
	// harmless.
	Completed map[string]bool
	// ClusterSize enables Pegasus-style horizontal clustering: up to this
	// many ready nodes with equal (Site, ClusterKey) submit as one Condor
	// task whose inner jobs run back to back on one slot. <= 1 disables
	// clustering (every node is its own task, the legacy behaviour).
	ClusterSize int
}

// emit delivers a monitoring event if a monitor is installed.
func (o Options) emit(e Event) {
	if o.Monitor != nil {
		o.Monitor(e)
	}
}

// Result describes one node's execution.
type Result struct {
	Node     string
	State    NodeState
	Site     string
	Attempts int
	Start    time.Duration // model time of the last attempt's start
	End      time.Duration // model time of the last attempt's end
	Err      error         // last error, when State != StateDone
}

// Report is the outcome of a workflow execution.
type Report struct {
	Results  map[string]*Result
	Makespan time.Duration
	Done     int
	Failed   int
	Unrun    int
	// Restored counts nodes recovered as done from Options.Completed —
	// journaled work a resumed run did not re-execute. They are included
	// in Done.
	Restored int
	// ScheduleEvents counts Condor tasks submitted to the scheduler — the
	// quantity clustering amortizes (a clustered batch is one event).
	ScheduleEvents int
	// ClusteredTasks counts multi-node batches submitted; ClusteredNodes
	// counts the inner jobs they carried.
	ClusteredTasks int
	ClusteredNodes int
}

// Succeeded reports whether every node completed.
func (r *Report) Succeeded() bool { return r.Failed == 0 && r.Unrun == 0 }

// RescueDAG returns the sub-workflow of failed and unrun nodes with the
// dependency edges among them — the DAG a resubmission would run.
func (r *Report) RescueDAG(g *dag.Graph) *dag.Graph {
	out := dag.New()
	include := map[string]bool{}
	for id, res := range r.Results {
		if res.State == StateFailed || res.State == StateUnrun {
			include[id] = true
		}
	}
	for id := range include {
		n, _ := g.Node(id)
		attrs := make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			attrs[k] = v
		}
		// Error impossible: ids are unique by construction.
		_ = out.AddNode(&dag.Node{ID: id, Type: n.Type, Attrs: attrs})
	}
	for id := range include {
		for _, c := range g.Children(id) {
			if include[c] {
				_ = out.AddEdge(id, c)
			}
		}
	}
	return out
}

// Errors returned by Execute.
var (
	ErrNilInput = errors.New("dagman: nil graph, runner or simulator")
	ErrStarved  = errors.New("dagman: tasks starved (pinned to saturated pools)")
	// ErrAborted marks a run stopped before completion — by Options.Check
	// (e.g. a cancelled context) or by a journal append failure (e.g. a
	// simulated crash). The journal holds the exact progress at the abort.
	ErrAborted = errors.New("dagman: execution aborted")
)

// Execute runs the workflow to completion (or permanent failure) on the
// given simulator. It is deterministic for a deterministic Runner.
func Execute(g *dag.Graph, runner Runner, sim *condor.Simulator, opt Options) (*Report, error) {
	if g == nil || runner == nil || sim == nil {
		return nil, ErrNilInput
	}
	report := &Report{Results: map[string]*Result{}}
	if g.Len() == 0 {
		return report, nil
	}
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}

	start := sim.Now()
	pendingParents := map[string]int{}
	for _, id := range g.Nodes() {
		pendingParents[id] = len(g.Parents(id))
		report.Results[id] = &Result{Node: id, State: StatePending}
	}

	// journalRec makes a state transition durable before it is acted on.
	journalRec := func(rec journal.Record) error {
		if opt.Journal == nil {
			return nil
		}
		if err := opt.Journal.Append(rec); err != nil {
			return errors.Join(ErrAborted, err)
		}
		return nil
	}
	// abort stops the run on a Check failure, journaling the clean abort
	// record best-effort (a crashed journal refuses it, which is fine — the
	// existing prefix is the truth).
	abort := func(cause error) error {
		if opt.Journal != nil {
			_ = opt.Journal.Append(journal.Record{
				Kind: journal.KindAborted, At: sim.Now(), Err: cause.Error()})
		}
		return errors.Join(ErrAborted, cause)
	}
	checkAbort := func() error {
		if opt.Check == nil {
			return nil
		}
		if err := opt.Check(); err != nil {
			return abort(err)
		}
		return nil
	}

	// Restore journaled completions: the crashed run's finished nodes count
	// as done without re-executing, and their children unlock.
	for _, id := range g.Nodes() {
		if !opt.Completed[id] {
			continue
		}
		res := report.Results[id]
		res.State = StateDone
		report.Restored++
		if err := journalRec(journal.Record{Kind: journal.KindRestored, Node: id, At: sim.Now()}); err != nil {
			return nil, err
		}
		opt.emit(Event{Kind: EventRestored, Node: id, At: sim.Now()})
		for _, child := range g.Children(id) {
			pendingParents[child]--
		}
	}

	// The throttle queue holds ready nodes waiting under MaxInFlight.
	var waiting []string
	inFlight := 0

	// fail stops the run on an abort or journal error. The simulator may
	// still hold launched side effects on its worker pool; wait them out so
	// no goroutine touches shared state after Execute returns. (A resumed
	// run re-executes those nodes anyway — their completions were never
	// journaled — and completion side effects are idempotent.)
	fail := func(err error) (*Report, error) {
		sim.Abort()
		return nil, err
	}

	// Horizontal clustering state: ready clusterable nodes wait in clusterBuf
	// (journaled and monitored as submitted) until flushClusters groups them
	// into batched Condor tasks before the next scheduler step.
	type pendingInner struct {
		id   string
		spec Spec
	}
	// clusterBatch tracks one batched task's inner jobs; errs is filled by
	// the batch Run in order, and settled per inner node at completion.
	type clusterBatch struct {
		ids  []string
		errs []error
	}
	var clusterBuf []pendingInner
	batches := map[string]*clusterBatch{}
	clusterSeq := 0

	doSubmit := func(id string) error {
		n, _ := g.Node(id)
		res := report.Results[id]
		res.Attempts++
		spec, err := runner(n, res.Attempts)
		if err != nil {
			return fmt.Errorf("dagman: runner for %s: %w", id, err)
		}
		if err := journalRec(journal.Record{
			Kind: journal.KindSubmitted, Node: id, Attempt: res.Attempts, At: sim.Now()}); err != nil {
			return err
		}
		res.State = StateRunning
		inFlight++
		opt.emit(Event{Kind: EventSubmitted, Node: id, Attempt: res.Attempts, At: sim.Now()})
		if opt.ClusterSize > 1 && spec.ClusterKey != "" {
			clusterBuf = append(clusterBuf, pendingInner{id: id, spec: spec})
			return nil
		}
		report.ScheduleEvents++
		return sim.Submit(condor.Task{ID: id, Site: spec.Site, Cost: spec.Cost, Lane: spec.Lane, Run: spec.Run})
	}

	// flushClusters drains the buffer into batched tasks: grouped by
	// (Site, ClusterKey) in first-appearance order, split into chunks of at
	// most ClusterSize. Inner Runs execute back to back inside one task —
	// inner failures are recorded individually and never abort the batch,
	// so one bad galaxy costs one retry, not fifteen re-runs.
	flushClusters := func() error {
		if len(clusterBuf) == 0 {
			return nil
		}
		type groupKey struct{ site, key, lane string }
		var order []groupKey
		groups := map[groupKey][]pendingInner{}
		for _, pi := range clusterBuf {
			k := groupKey{site: pi.spec.Site, key: pi.spec.ClusterKey, lane: pi.spec.Lane}
			if _, seen := groups[k]; !seen {
				order = append(order, k)
			}
			groups[k] = append(groups[k], pi)
		}
		clusterBuf = nil
		for _, k := range order {
			items := groups[k]
			for lo := 0; lo < len(items); lo += opt.ClusterSize {
				hi := lo + opt.ClusterSize
				if hi > len(items) {
					hi = len(items)
				}
				chunk := items[lo:hi]
				var cost time.Duration
				cb := &clusterBatch{errs: make([]error, len(chunk))}
				runs := make([]func() error, len(chunk))
				for i, pi := range chunk {
					cb.ids = append(cb.ids, pi.id)
					cost += pi.spec.Cost
					runs[i] = pi.spec.Run
				}
				clusterSeq++
				taskID := fmt.Sprintf("cluster-%04d_%s_%s", clusterSeq, k.key, k.site)
				batches[taskID] = cb
				report.ScheduleEvents++
				if len(chunk) > 1 {
					report.ClusteredTasks++
					report.ClusteredNodes += len(chunk)
				}
				run := func() error {
					for i, r := range runs {
						if r != nil {
							cb.errs[i] = r()
						}
					}
					return nil // inner outcomes are settled individually
				}
				if err := sim.Submit(condor.Task{
					ID: taskID, Site: k.site, Cost: cost, Lane: k.lane, Run: run,
				}); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// maxInFlight resolves the throttle for this instant: the dynamic
	// function when present, the static option otherwise.
	maxInFlight := func() int {
		if opt.MaxInFlightFn != nil {
			return opt.MaxInFlightFn()
		}
		return opt.MaxInFlight
	}

	// submit releases a node immediately or queues it under the throttle.
	submit := func(id string) error {
		if limit := maxInFlight(); limit > 0 && inFlight >= limit {
			waiting = append(waiting, id)
			return nil
		}
		return doSubmit(id)
	}

	// drainWaiting releases throttled nodes as capacity frees up.
	drainWaiting := func() error {
		for len(waiting) > 0 {
			if limit := maxInFlight(); limit > 0 && inFlight >= limit {
				return nil
			}
			id := waiting[0]
			waiting = waiting[1:]
			if err := doSubmit(id); err != nil {
				return err
			}
		}
		return nil
	}

	// Release every node whose parents are all satisfied. With no restored
	// completions this is exactly g.Roots(); after a restore it also covers
	// interior nodes whose ancestors finished in the crashed run.
	if err := checkAbort(); err != nil {
		return nil, err
	}
	for _, id := range g.Nodes() {
		res := report.Results[id]
		if res.State != StatePending || pendingParents[id] > 0 {
			continue
		}
		if err := submit(id); err != nil {
			return fail(err)
		}
	}
	if err := flushClusters(); err != nil {
		return fail(err)
	}

	markUnrunDescendants := func(id string) {
		for _, d := range g.Descendants(id) {
			res := report.Results[d]
			if res.State == StatePending {
				res.State = StateUnrun
			}
		}
	}

	// settle applies one node's outcome: journal, retry/fail/complete, child
	// release. For a clustered batch it runs once per inner node with that
	// node's own error, so recovery semantics match unclustered execution.
	settle := func(id, site string, startAt, endAt time.Duration, nodeErr error) error {
		res := report.Results[id]
		res.Site = site
		res.Start = startAt
		res.End = endAt
		res.Err = nodeErr
		inFlight--

		if nodeErr != nil {
			retry := res.Attempts <= opt.MaxRetries
			if opt.RetryPolicy != nil {
				retry = opt.RetryPolicy(id, res.Attempts, nodeErr)
			}
			if retry {
				if err := journalRec(journal.Record{Kind: journal.KindRetried,
					Node: id, Site: site, Attempt: res.Attempts,
					At: endAt, Err: nodeErr.Error()}); err != nil {
					return err
				}
				opt.emit(Event{Kind: EventRetried, Node: id, Site: site,
					Attempt: res.Attempts, At: endAt, Err: nodeErr})
				return submit(id)
			}
			if err := journalRec(journal.Record{Kind: journal.KindFailed,
				Node: id, Site: site, Attempt: res.Attempts,
				At: endAt, Err: nodeErr.Error()}); err != nil {
				return err
			}
			res.State = StateFailed
			opt.emit(Event{Kind: EventFailed, Node: id, Site: site,
				Attempt: res.Attempts, At: endAt, Err: nodeErr})
			markUnrunDescendants(id)
			return nil
		}
		if err := journalRec(journal.Record{Kind: journal.KindCompleted,
			Node: id, Site: site, Attempt: res.Attempts, At: endAt}); err != nil {
			return err
		}
		res.State = StateDone
		opt.emit(Event{Kind: EventCompleted, Node: id, Site: site,
			Attempt: res.Attempts, At: endAt})
		// Release children whose parents are now all done.
		for _, child := range g.Children(id) {
			pendingParents[child]--
			if pendingParents[child] > 0 {
				continue
			}
			childRes := report.Results[child]
			if childRes.State != StatePending {
				continue // upstream failure already marked it unrun
			}
			if err := submit(child); err != nil {
				return err
			}
		}
		return nil
	}

	for {
		if err := checkAbort(); err != nil {
			return fail(err)
		}
		completions, ok := sim.Step()
		if !ok {
			break
		}
		for _, c := range completions {
			if cb, clustered := batches[c.TaskID]; clustered {
				delete(batches, c.TaskID)
				for i, id := range cb.ids {
					innerErr := cb.errs[i]
					if c.Err != nil {
						// A whole-task failure (e.g. an injected batch
						// fault) fails every inner job it carried.
						innerErr = c.Err
					}
					if err := settle(id, c.Site, c.Start, c.End, innerErr); err != nil {
						return fail(err)
					}
				}
				continue
			}
			if err := settle(c.TaskID, c.Site, c.Start, c.End, c.Err); err != nil {
				return fail(err)
			}
		}
		if err := drainWaiting(); err != nil {
			return fail(err)
		}
		if err := flushClusters(); err != nil {
			return fail(err)
		}
	}

	if sim.QueueLen() > 0 {
		return nil, ErrStarved
	}

	for _, res := range report.Results {
		switch res.State {
		case StateDone:
			report.Done++
		case StateFailed:
			report.Failed++
		case StateUnrun, StatePending, StateRunning:
			// Pending/Running here would indicate a scheduler bug; count
			// them as unrun rather than losing them silently.
			res.State = StateUnrun
			report.Unrun++
		}
	}
	report.Makespan = sim.Now() - start
	return report, nil
}
