// Package dagman executes concrete workflows the way Condor DAGMan does
// (Frey et al. 2001): it releases a node to the Condor-G scheduler only when
// all its parents have completed, retries failed nodes up to a configurable
// limit, and when nodes fail permanently produces a rescue DAG — the
// sub-workflow of failed and never-run nodes that a later submission can
// resume from.
//
// The actual behaviour of each node (computing morphology, moving files with
// GridFTP, registering replicas) is supplied by the caller as a Runner that
// maps concrete-workflow nodes to condor Tasks.
package dagman

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
	"repro/internal/journal"
)

// NodeState is the lifecycle state of one workflow node.
type NodeState int

// Node states.
const (
	StatePending NodeState = iota
	StateRunning
	StateDone
	StateFailed // exhausted retries
	StateUnrun  // never became runnable (upstream failure)
)

// String labels the state.
func (s NodeState) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateUnrun:
		return "unrun"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// Spec is the execution recipe for one node.
type Spec struct {
	Site string        // pool to run on ("" = matchmake)
	Cost time.Duration // model duration at unit speed
	Run  func() error  // side effects, executed at completion time
}

// Runner maps a workflow node to its execution recipe. It is called once per
// attempt, so a retry can pick a different site.
type Runner func(n *dag.Node, attempt int) (Spec, error)

// EventKind classifies monitoring events (the "Monitoring" and "Log Files"
// arrows of the paper's Figure 2).
type EventKind int

// Event kinds.
const (
	EventSubmitted EventKind = iota
	EventCompleted
	EventRetried
	EventFailed // retries exhausted
	// EventRestored marks a node recovered as already-done from a journal
	// (Options.Completed); it never executed in this run.
	EventRestored
)

// String labels the kind.
func (k EventKind) String() string {
	switch k {
	case EventSubmitted:
		return "submitted"
	case EventCompleted:
		return "completed"
	case EventRetried:
		return "retried"
	case EventFailed:
		return "failed"
	case EventRestored:
		return "restored"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one monitoring record.
type Event struct {
	Kind    EventKind
	Node    string
	Site    string        // set on completion events
	Attempt int           // 1-based
	At      time.Duration // model time
	Err     error         // set on retried/failed
}

// Options tunes the executor.
type Options struct {
	// MaxRetries is the number of re-submissions after a failure (so a node
	// runs at most MaxRetries+1 times). DAGMan's default of retrying is the
	// prototype's primary infrastructure fault tolerance.
	MaxRetries int
	// Monitor, when set, receives every lifecycle event — the job-status
	// stream a portal's progress display consumes.
	Monitor func(Event)
	// MaxInFlight caps the number of simultaneously submitted nodes, like
	// DAGMan's -maxjobs throttle (0 = unlimited). Ready nodes beyond the
	// cap wait in submission order.
	MaxInFlight int
	// RetryPolicy, when set, replaces the fixed MaxRetries rule: after a
	// failed attempt it decides whether the node runs again. attempt is the
	// 1-based attempt that just failed. Use resilience.Policy.DAGManPolicy
	// for budgeted backoff-aware decisions; nil keeps DAGMan's classic
	// count-based behaviour.
	RetryPolicy func(node string, attempt int, err error) bool
	// Journal, when set, receives a write-ahead record at every node state
	// transition, BEFORE the executor acts on the transition. A failed
	// append aborts the run (ErrAborted): a transition that cannot be made
	// durable must not happen, or replay-to-resume would re-run completed
	// side effects' descendants against a lying history. Nil journals
	// nothing at zero cost.
	Journal journal.Sink
	// Check, when set, is polled between scheduler events; a non-nil error
	// aborts the run cleanly (an abort record is journaled, ErrAborted is
	// returned). Wire a context with func() error { return ctx.Err() } to
	// make an abandoned request stop scheduling new nodes.
	Check func() error
	// Completed restores nodes a previous (crashed) run already finished:
	// they are marked done without executing, their children unlock, and
	// they surface as EventRestored. IDs not present in the graph are
	// ignored, so a journal replayed against a reduced or rescue DAG is
	// harmless.
	Completed map[string]bool
}

// emit delivers a monitoring event if a monitor is installed.
func (o Options) emit(e Event) {
	if o.Monitor != nil {
		o.Monitor(e)
	}
}

// Result describes one node's execution.
type Result struct {
	Node     string
	State    NodeState
	Site     string
	Attempts int
	Start    time.Duration // model time of the last attempt's start
	End      time.Duration // model time of the last attempt's end
	Err      error         // last error, when State != StateDone
}

// Report is the outcome of a workflow execution.
type Report struct {
	Results  map[string]*Result
	Makespan time.Duration
	Done     int
	Failed   int
	Unrun    int
	// Restored counts nodes recovered as done from Options.Completed —
	// journaled work a resumed run did not re-execute. They are included
	// in Done.
	Restored int
}

// Succeeded reports whether every node completed.
func (r *Report) Succeeded() bool { return r.Failed == 0 && r.Unrun == 0 }

// RescueDAG returns the sub-workflow of failed and unrun nodes with the
// dependency edges among them — the DAG a resubmission would run.
func (r *Report) RescueDAG(g *dag.Graph) *dag.Graph {
	out := dag.New()
	include := map[string]bool{}
	for id, res := range r.Results {
		if res.State == StateFailed || res.State == StateUnrun {
			include[id] = true
		}
	}
	for id := range include {
		n, _ := g.Node(id)
		attrs := make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			attrs[k] = v
		}
		// Error impossible: ids are unique by construction.
		_ = out.AddNode(&dag.Node{ID: id, Type: n.Type, Attrs: attrs})
	}
	for id := range include {
		for _, c := range g.Children(id) {
			if include[c] {
				_ = out.AddEdge(id, c)
			}
		}
	}
	return out
}

// Errors returned by Execute.
var (
	ErrNilInput = errors.New("dagman: nil graph, runner or simulator")
	ErrStarved  = errors.New("dagman: tasks starved (pinned to saturated pools)")
	// ErrAborted marks a run stopped before completion — by Options.Check
	// (e.g. a cancelled context) or by a journal append failure (e.g. a
	// simulated crash). The journal holds the exact progress at the abort.
	ErrAborted = errors.New("dagman: execution aborted")
)

// Execute runs the workflow to completion (or permanent failure) on the
// given simulator. It is deterministic for a deterministic Runner.
func Execute(g *dag.Graph, runner Runner, sim *condor.Simulator, opt Options) (*Report, error) {
	if g == nil || runner == nil || sim == nil {
		return nil, ErrNilInput
	}
	report := &Report{Results: map[string]*Result{}}
	if g.Len() == 0 {
		return report, nil
	}
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}

	start := sim.Now()
	pendingParents := map[string]int{}
	for _, id := range g.Nodes() {
		pendingParents[id] = len(g.Parents(id))
		report.Results[id] = &Result{Node: id, State: StatePending}
	}

	// journalRec makes a state transition durable before it is acted on.
	journalRec := func(rec journal.Record) error {
		if opt.Journal == nil {
			return nil
		}
		if err := opt.Journal.Append(rec); err != nil {
			return errors.Join(ErrAborted, err)
		}
		return nil
	}
	// abort stops the run on a Check failure, journaling the clean abort
	// record best-effort (a crashed journal refuses it, which is fine — the
	// existing prefix is the truth).
	abort := func(cause error) error {
		if opt.Journal != nil {
			_ = opt.Journal.Append(journal.Record{
				Kind: journal.KindAborted, At: sim.Now(), Err: cause.Error()})
		}
		return errors.Join(ErrAborted, cause)
	}
	checkAbort := func() error {
		if opt.Check == nil {
			return nil
		}
		if err := opt.Check(); err != nil {
			return abort(err)
		}
		return nil
	}

	// Restore journaled completions: the crashed run's finished nodes count
	// as done without re-executing, and their children unlock.
	for _, id := range g.Nodes() {
		if !opt.Completed[id] {
			continue
		}
		res := report.Results[id]
		res.State = StateDone
		report.Restored++
		if err := journalRec(journal.Record{Kind: journal.KindRestored, Node: id, At: sim.Now()}); err != nil {
			return nil, err
		}
		opt.emit(Event{Kind: EventRestored, Node: id, At: sim.Now()})
		for _, child := range g.Children(id) {
			pendingParents[child]--
		}
	}

	// The throttle queue holds ready nodes waiting under MaxInFlight.
	var waiting []string
	inFlight := 0

	// fail stops the run on an abort or journal error. The simulator may
	// still hold launched side effects on its worker pool; wait them out so
	// no goroutine touches shared state after Execute returns. (A resumed
	// run re-executes those nodes anyway — their completions were never
	// journaled — and completion side effects are idempotent.)
	fail := func(err error) (*Report, error) {
		sim.Abort()
		return nil, err
	}

	doSubmit := func(id string) error {
		n, _ := g.Node(id)
		res := report.Results[id]
		res.Attempts++
		spec, err := runner(n, res.Attempts)
		if err != nil {
			return fmt.Errorf("dagman: runner for %s: %w", id, err)
		}
		if err := journalRec(journal.Record{
			Kind: journal.KindSubmitted, Node: id, Attempt: res.Attempts, At: sim.Now()}); err != nil {
			return err
		}
		res.State = StateRunning
		inFlight++
		opt.emit(Event{Kind: EventSubmitted, Node: id, Attempt: res.Attempts, At: sim.Now()})
		return sim.Submit(condor.Task{ID: id, Site: spec.Site, Cost: spec.Cost, Run: spec.Run})
	}

	// submit releases a node immediately or queues it under the throttle.
	submit := func(id string) error {
		if opt.MaxInFlight > 0 && inFlight >= opt.MaxInFlight {
			waiting = append(waiting, id)
			return nil
		}
		return doSubmit(id)
	}

	// drainWaiting releases throttled nodes as capacity frees up.
	drainWaiting := func() error {
		for len(waiting) > 0 && (opt.MaxInFlight == 0 || inFlight < opt.MaxInFlight) {
			id := waiting[0]
			waiting = waiting[1:]
			if err := doSubmit(id); err != nil {
				return err
			}
		}
		return nil
	}

	// Release every node whose parents are all satisfied. With no restored
	// completions this is exactly g.Roots(); after a restore it also covers
	// interior nodes whose ancestors finished in the crashed run.
	if err := checkAbort(); err != nil {
		return nil, err
	}
	for _, id := range g.Nodes() {
		res := report.Results[id]
		if res.State != StatePending || pendingParents[id] > 0 {
			continue
		}
		if err := submit(id); err != nil {
			return fail(err)
		}
	}

	markUnrunDescendants := func(id string) {
		for _, d := range g.Descendants(id) {
			res := report.Results[d]
			if res.State == StatePending {
				res.State = StateUnrun
			}
		}
	}

	for {
		if err := checkAbort(); err != nil {
			return fail(err)
		}
		completions, ok := sim.Step()
		if !ok {
			break
		}
		for _, c := range completions {
			res := report.Results[c.TaskID]
			res.Site = c.Site
			res.Start = c.Start
			res.End = c.End
			res.Err = c.Err
			inFlight--

			if c.Err != nil {
				retry := res.Attempts <= opt.MaxRetries
				if opt.RetryPolicy != nil {
					retry = opt.RetryPolicy(c.TaskID, res.Attempts, c.Err)
				}
				if retry {
					if err := journalRec(journal.Record{Kind: journal.KindRetried,
						Node: c.TaskID, Site: c.Site, Attempt: res.Attempts,
						At: c.End, Err: c.Err.Error()}); err != nil {
						return fail(err)
					}
					opt.emit(Event{Kind: EventRetried, Node: c.TaskID, Site: c.Site,
						Attempt: res.Attempts, At: c.End, Err: c.Err})
					if err := submit(c.TaskID); err != nil {
						return fail(err)
					}
					continue
				}
				if err := journalRec(journal.Record{Kind: journal.KindFailed,
					Node: c.TaskID, Site: c.Site, Attempt: res.Attempts,
					At: c.End, Err: c.Err.Error()}); err != nil {
					return fail(err)
				}
				res.State = StateFailed
				opt.emit(Event{Kind: EventFailed, Node: c.TaskID, Site: c.Site,
					Attempt: res.Attempts, At: c.End, Err: c.Err})
				markUnrunDescendants(c.TaskID)
				continue
			}
			if err := journalRec(journal.Record{Kind: journal.KindCompleted,
				Node: c.TaskID, Site: c.Site, Attempt: res.Attempts, At: c.End}); err != nil {
				return fail(err)
			}
			res.State = StateDone
			opt.emit(Event{Kind: EventCompleted, Node: c.TaskID, Site: c.Site,
				Attempt: res.Attempts, At: c.End})
			// Release children whose parents are now all done.
			for _, child := range g.Children(c.TaskID) {
				pendingParents[child]--
				if pendingParents[child] > 0 {
					continue
				}
				childRes := report.Results[child]
				if childRes.State != StatePending {
					continue // upstream failure already marked it unrun
				}
				if err := submit(child); err != nil {
					return fail(err)
				}
			}
		}
		if err := drainWaiting(); err != nil {
			return fail(err)
		}
	}

	if sim.QueueLen() > 0 {
		return nil, ErrStarved
	}

	for _, res := range report.Results {
		switch res.State {
		case StateDone:
			report.Done++
		case StateFailed:
			report.Failed++
		case StateUnrun, StatePending, StateRunning:
			// Pending/Running here would indicate a scheduler bug; count
			// them as unrun rather than losing them silently.
			res.State = StateUnrun
			report.Unrun++
		}
	}
	report.Makespan = sim.Now() - start
	return report, nil
}
