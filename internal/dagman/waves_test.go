package dagman

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
)

// prefixChain builds a linear workflow <p>1 -> <p>2 -> ... -> <p>k, giving
// each wave its own node-ID namespace.
func prefixChain(t testing.TB, p string, k int) *dag.Graph {
	t.Helper()
	g := dag.New()
	for i := 1; i <= k; i++ {
		if err := g.AddNode(&dag.Node{ID: fmt.Sprintf("%s%d", p, i), Type: "compute"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 2; i <= k; i++ {
		if err := g.AddEdge(fmt.Sprintf("%s%d", p, i-1), fmt.Sprintf("%s%d", p, i)); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func waveSims(t testing.TB) func() (*condor.Simulator, error) {
	t.Helper()
	return func() (*condor.Simulator, error) {
		return condor.NewSimulator(condor.Pool{Name: "usc", Slots: 4})
	}
}

func TestExecuteWavesValidation(t *testing.T) {
	next := func(int) (*dag.Graph, error) { return nil, nil }
	if _, err := ExecuteWaves(nil, unitRunner(nil), waveSims(t), Options{}, 0); !errors.Is(err, ErrNilInput) {
		t.Error("nil next must fail")
	}
	if _, err := ExecuteWaves(next, nil, waveSims(t), Options{}, 0); !errors.Is(err, ErrNilInput) {
		t.Error("nil runner must fail")
	}
	if _, err := ExecuteWaves(next, unitRunner(nil), nil, Options{}, 0); !errors.Is(err, ErrNilInput) {
		t.Error("nil sim factory must fail")
	}
}

// TestExecuteWavesSequentialAggregation runs three waves of different sizes
// and checks strict wave ordering, counter aggregation, and the peak-wave
// bound the whole design exists to cap.
func TestExecuteWavesSequentialAggregation(t *testing.T) {
	sizes := []int{3, 5, 2}
	var order []string
	next := func(w int) (*dag.Graph, error) {
		if w >= len(sizes) {
			return nil, nil
		}
		return prefixChain(t, fmt.Sprintf("w%d_n", w), sizes[w]), nil
	}
	ws, err := ExecuteWaves(next, unitRunner(&order), waveSims(t), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Waves != 3 || ws.Nodes != 10 || ws.MaxWaveNodes != 5 || ws.Done != 10 || ws.Failed != 0 {
		t.Fatalf("stats = %+v", ws)
	}
	// Chains of 3+5+2 unit jobs run back to back: makespan adds up.
	if ws.Makespan != 10*time.Second {
		t.Errorf("makespan = %v, want 10s", ws.Makespan)
	}
	if len(order) != 10 {
		t.Fatalf("ran %d nodes: %v", len(order), order)
	}
	// Every wave-0 node precedes every wave-1 node, and so on: waves are a
	// hard execution barrier, not just a planning convenience.
	waveOf := func(id string) int {
		var w int
		fmt.Sscanf(id, "w%d_", &w)
		return w
	}
	for i := 1; i < len(order); i++ {
		if waveOf(order[i-1]) > waveOf(order[i]) {
			t.Fatalf("wave order violated: %s before %s", order[i-1], order[i])
		}
	}
}

// TestExecuteWavesSkipsEmpty checks a fully-reduced wave (everything pruned
// on resume) is counted but not executed.
func TestExecuteWavesSkipsEmpty(t *testing.T) {
	next := func(w int) (*dag.Graph, error) {
		switch w {
		case 0:
			return prefixChain(t, "a", 2), nil
		case 1:
			return dag.New(), nil
		case 2:
			return prefixChain(t, "b", 1), nil
		}
		return nil, nil
	}
	ws, err := ExecuteWaves(next, unitRunner(nil), waveSims(t), Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Waves != 3 || ws.Nodes != 3 || ws.Done != 3 {
		t.Errorf("stats = %+v", ws)
	}
}

// TestExecuteWavesPermanentFailure checks a wave that fails after retries
// surfaces as a WaveError carrying that wave's graph and report, with prior
// waves' work already aggregated.
func TestExecuteWavesPermanentFailure(t *testing.T) {
	next := func(w int) (*dag.Graph, error) {
		if w >= 2 {
			return nil, nil
		}
		return prefixChain(t, fmt.Sprintf("w%d_n", w), 3), nil
	}
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if n.ID == "w1_n2" {
				return errors.New("broken")
			}
			return nil
		}}, nil
	}
	ws, err := ExecuteWaves(next, runner, waveSims(t), Options{MaxRetries: 1}, 0)
	var we *WaveError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want WaveError", err)
	}
	if we.Wave != 1 || we.Report.Failed != 1 || we.Report.Unrun != 1 {
		t.Errorf("wave error = wave %d, report %+v", we.Wave, we.Report)
	}
	if _, ok := we.Graph.Node("w1_n2"); !ok {
		t.Error("wave error must carry the failed wave's graph")
	}
	// Wave 0 completed and is aggregated; wave 1's partial progress too.
	if ws.Done != 4 || ws.Failed != 1 || ws.Unrun != 1 || ws.Waves != 2 {
		t.Errorf("stats = %+v", ws)
	}
}

// TestExecuteWavesPlanningError checks a failing next stops the sequence
// with the wave index wrapped in.
func TestExecuteWavesPlanningError(t *testing.T) {
	sentinel := errors.New("no images")
	next := func(w int) (*dag.Graph, error) {
		if w == 1 {
			return nil, sentinel
		}
		return prefixChain(t, "a", 1), nil
	}
	ws, err := ExecuteWaves(next, unitRunner(nil), waveSims(t), Options{}, 0)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if ws.Waves != 1 || ws.Done != 1 {
		t.Errorf("stats = %+v", ws)
	}
}

// TestExecuteWavesSharedCompleted checks one flat completed-set restores
// nodes in whichever wave they appear, and IDs matching no wave are ignored
// — the property that lets a resume feed a crashed run's whole journal to
// every wave.
func TestExecuteWavesSharedCompleted(t *testing.T) {
	next := func(w int) (*dag.Graph, error) {
		if w >= 2 {
			return nil, nil
		}
		return prefixChain(t, fmt.Sprintf("w%d_n", w), 3), nil
	}
	var order []string
	opt := Options{Completed: map[string]bool{
		"w0_n1": true, "w1_n1": true, "w1_n2": true, "ghost": true,
	}}
	ws, err := ExecuteWaves(next, unitRunner(&order), waveSims(t), opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Restored != 3 || ws.Done != 6 {
		t.Errorf("stats = %+v", ws)
	}
	for _, id := range order {
		if opt.Completed[id] {
			t.Errorf("restored node %s must not re-run", id)
		}
	}
	if len(order) != 3 {
		t.Errorf("ran %v, want the 3 unrestored nodes", order)
	}
}
