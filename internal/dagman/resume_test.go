package dagman

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/dag"
	"repro/internal/journal"
)

func TestDAGFileRoundTripAttrs(t *testing.T) {
	g := dag.New()
	// Hostile IDs and values: spaces, quotes, newlines, unicode.
	a := &dag.Node{ID: `tx a "quoted"`, Type: "transfer",
		Attrs: map[string]string{"src": "gsiftp://x/ y", "multi": "line\nbreak"}}
	b := &dag.Node{ID: "b", Type: "galmorph", Attrs: map[string]string{"lfn": "ngc–4321.fit"}}
	for _, n := range []*dag.Node{a, b} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(a.ID, "b"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wf.dag")
	if err := WriteDAGFile(path, g, map[string]bool{"b": true}); err != nil {
		t.Fatal(err)
	}
	loaded, done, err := ReadDAGFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, loaded, g)
	if !done["b"] || len(done) != 1 {
		t.Errorf("done = %v, want {b}", done)
	}
}

func TestDAGFileDeterministic(t *testing.T) {
	g := chainGraph(t, 5)
	var a, b strings.Builder
	if err := WriteDAG(&a, g, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteDAG(&b, g, nil); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization is not deterministic")
	}
}

func TestDAGFileRejectsGarbage(t *testing.T) {
	for name, text := range map[string]string{
		"empty":        "",
		"bad header":   "DAGFILE v9\n",
		"unknown op":   "DAGFILE v1\nBLURB \"x\"\n",
		"edge no node": "DAGFILE v1\nEDGE \"a\" \"b\"\n",
		"attr no node": "DAGFILE v1\nATTR \"a\" \"k\" \"v\"\n",
		"done no node": "DAGFILE v1\nDONE \"a\"\n",
		"unquoted":     "DAGFILE v1\nNODE a compute\n",
		"torn quote":   "DAGFILE v1\nNODE \"a\n",
		"dup node":     "DAGFILE v1\nNODE \"a\" \"x\"\nNODE \"a\" \"x\"\n",
	} {
		if _, _, err := ReadDAG(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// journalFor runs Execute over a chain with a journal writer and returns the
// journal path.
func journalFor(t *testing.T, sink journal.Sink, opt Options) (*Report, error) {
	t.Helper()
	g := chainGraph(t, 4)
	sim, err := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt.Journal = sink
	return Execute(g, unitRunner(nil), sim, opt)
}

func TestExecuteJournalsEveryTransition(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.journal")
	w, err := journal.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journalFor(t, w, Options{})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	w.Close()
	recs, truncated, err := journal.Replay(path)
	if err != nil || truncated {
		t.Fatalf("replay: %v truncated=%t", err, truncated)
	}
	// 4 nodes, no faults: 4 submitted + 4 completed.
	kinds := map[string]int{}
	for _, r := range recs {
		kinds[r.Kind]++
	}
	if kinds[journal.KindSubmitted] != 4 || kinds[journal.KindCompleted] != 4 {
		t.Errorf("journal kinds = %v", kinds)
	}
	done := journal.CompletedNodes(recs)
	for _, id := range []string{"n1", "n2", "n3", "n4"} {
		if !done[id] {
			t.Errorf("%s not recorded done", id)
		}
	}
}

func TestExecuteJournalsRetryAndFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.journal")
	w, _ := journal.Create(path)
	g := chainGraph(t, 2)
	runner := func(n *dag.Node, attempt int) (Spec, error) {
		return Spec{Cost: time.Second, Run: func() error {
			if n.ID == "n1" {
				return errors.New("dead disk")
			}
			return nil
		}}, nil
	}
	sim, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 1})
	rep, err := Execute(g, runner, sim, Options{MaxRetries: 1, Journal: w})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Succeeded() {
		t.Fatal("must fail")
	}
	w.Close()
	recs, _, _ := journal.Replay(path)
	kinds := map[string]int{}
	for _, r := range recs {
		kinds[r.Kind]++
		if (r.Kind == journal.KindRetried || r.Kind == journal.KindFailed) && r.Err == "" {
			t.Errorf("%s record lost its error", r.Kind)
		}
	}
	if kinds[journal.KindRetried] != 1 || kinds[journal.KindFailed] != 1 {
		t.Errorf("journal kinds = %v", kinds)
	}
	if done := journal.CompletedNodes(recs); len(done) != 0 {
		t.Errorf("failed chain recorded completions: %v", done)
	}
}

func TestExecuteRestoresCompleted(t *testing.T) {
	g := chainGraph(t, 3)
	var order []string
	sim, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 2})
	var restored []string
	rep, err := Execute(g, unitRunner(&order), sim, Options{
		Completed: map[string]bool{"n1": true, "ghost": true},
		Monitor: func(e Event) {
			if e.Kind == EventRestored {
				restored = append(restored, e.Node)
			}
		},
	})
	if err != nil || !rep.Succeeded() {
		t.Fatalf("rep=%+v err=%v", rep, err)
	}
	if rep.Restored != 1 || rep.Done != 3 {
		t.Errorf("restored=%d done=%d, want 1 and 3", rep.Restored, rep.Done)
	}
	if len(order) != 2 || order[0] != "n2" || order[1] != "n3" {
		t.Errorf("executed %v, want only [n2 n3]", order)
	}
	if rep.Results["n1"].Attempts != 0 {
		t.Errorf("restored node re-ran: %+v", rep.Results["n1"])
	}
	if len(restored) != 1 || restored[0] != "n1" {
		t.Errorf("restored events = %v", restored)
	}
}

func TestExecuteCheckAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.journal")
	w, _ := journal.Create(path)
	calls := 0
	cancelled := errors.New("request abandoned")
	_, err := journalFor(t, w, Options{Check: func() error {
		calls++
		if calls > 2 {
			return cancelled
		}
		return nil
	}})
	if !errors.Is(err, ErrAborted) || !errors.Is(err, cancelled) {
		t.Fatalf("err = %v, want ErrAborted wrapping the cause", err)
	}
	w.Close()
	recs, _, _ := journal.Replay(path)
	if len(recs) == 0 || recs[len(recs)-1].Kind != journal.KindAborted {
		t.Errorf("journal must end with an abort record: %+v", recs)
	}
}

func TestExecuteCrashThenResumeRunsOnlyUnfinished(t *testing.T) {
	// Sweep the kill point over every journal-append boundary: for each, the
	// crashed run aborts, and a resume restores exactly the journaled
	// completions and executes only the rest.
	const n = 5
	// An uninterrupted run journals 2*n records (submit+complete per node).
	for kill := 1; kill < 2*n; kill++ {
		path := filepath.Join(t.TempDir(), "wf.journal")
		w, err := journal.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		crash := &journal.CrashSink{Sink: w, After: kill}
		g := chainGraph(t, n)
		sim, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 1})
		_, err = Execute(g, unitRunner(nil), sim, Options{Journal: crash})
		if !errors.Is(err, ErrAborted) || !errors.Is(err, journal.ErrCrash) {
			t.Fatalf("kill=%d: err = %v, want aborted crash", kill, err)
		}
		w.Close()

		recs, _, err := journal.Replay(path)
		if err != nil {
			t.Fatalf("kill=%d: %v", kill, err)
		}
		done := journal.CompletedNodes(recs)

		w2, _, err := journal.OpenAppend(path)
		if err != nil {
			t.Fatalf("kill=%d: %v", kill, err)
		}
		var order []string
		g2 := chainGraph(t, n)
		sim2, _ := condor.NewSimulator(condor.Pool{Name: "p", Slots: 1})
		rep, err := Execute(g2, unitRunner(&order), sim2, Options{Journal: w2, Completed: done})
		if err != nil || !rep.Succeeded() {
			t.Fatalf("kill=%d: resume rep=%+v err=%v", kill, rep, err)
		}
		w2.Close()
		if rep.Restored != len(done) {
			t.Errorf("kill=%d: restored %d, journal said %d", kill, rep.Restored, len(done))
		}
		// Only the non-done prefix re-executed.
		if len(order)+len(done) != n {
			t.Errorf("kill=%d: executed %v with %d restored", kill, order, len(done))
		}
		for _, id := range order {
			if done[id] {
				t.Errorf("kill=%d: re-executed completed node %s", kill, id)
			}
		}
	}
}
