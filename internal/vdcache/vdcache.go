// Package vdcache is a content-keyed derived-data cache: Chimera's virtual
// data idea ("any such data product can be transparently regenerated, or
// fetched if it already exists") applied at the granularity of one
// derivation's result. A derived product is keyed by what actually determines
// it — the content of its input data and the transformation's parameters —
// so a repeat derivation over identical bytes is served from memory no matter
// which request, cluster, or output LFN asked for it. The compute service
// memoizes per-galaxy morphology measurements this way: a warm request skips
// fits decoding and the Measure hot path entirely, and the cached product is
// still published through the normal register nodes as replicas of the
// derivation's output LFN.
//
// The cache is safe for concurrent use: parallel leaf jobs running galMorph
// side effects on the worker pool share one instance per service.
package vdcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// Key derives a cache key from the parts that determine a derived product:
// typically the raw input bytes and a rendering of the transformation's
// parameters. Parts are length-framed before hashing, so ("ab", "c") and
// ("a", "bc") never collide.
func Key(parts ...[]byte) string {
	h := sha256.New()
	var frame [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(frame[:], uint64(len(p)))
		h.Write(frame[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// Cache maps content keys to derived values of type V. The zero value is not
// usable; create with New. All methods are nil-safe: a nil *Cache behaves as
// an always-miss cache that drops writes, so callers can leave memoization
// unconfigured at zero cost.
type Cache[V any] struct {
	mu      sync.Mutex
	entries map[string]V
	hits    int64
	misses  int64
}

// New builds an empty cache.
func New[V any]() *Cache[V] {
	return &Cache[V]{entries: map[string]V{}}
}

// Get returns the value cached under key, counting a hit or miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if ok {
		c.hits++
		return v, true
	}
	c.misses++
	return zero, false
}

// Put stores v under key, replacing any previous entry.
func (c *Cache[V]) Put(key string, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = v
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit/miss counters and current size.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}
