package vdcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestKeyFraming(t *testing.T) {
	if Key([]byte("ab"), []byte("c")) == Key([]byte("a"), []byte("bc")) {
		t.Fatal("length framing must separate part boundaries")
	}
	if Key([]byte("x")) != Key([]byte("x")) {
		t.Fatal("Key must be deterministic")
	}
	if Key() == Key([]byte{}) {
		t.Fatal("zero parts and one empty part must differ")
	}
}

func TestGetPutAndStats(t *testing.T) {
	c := New[int]()
	if _, ok := c.Get("k"); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put("k", 42)
	v, ok := c.Get("k")
	if !ok || v != 42 {
		t.Fatalf("got %d, %t", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache[string]
	c.Put("k", "v")
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache must always miss")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache must report zero state")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int]()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%17)
				c.Put(key, i)
				c.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 17 {
		t.Fatalf("len = %d, want 17", c.Len())
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
