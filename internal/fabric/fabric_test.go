package fabric

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/condor"
)

func newTestFabric(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	if len(cfg.Pools) == 0 {
		cfg.Pools = []condor.Pool{{Name: "usc", Slots: 4, Speed: 1}}
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

// mustGrant admits and requires an immediate grant.
func mustGrant(t *testing.T, f *Fabric, tenant string, priority int) *Lease {
	t.Helper()
	tk, err := f.Admit(tenant, priority)
	if err != nil {
		t.Fatalf("Admit(%s): %v", tenant, err)
	}
	if !tk.Granted() {
		t.Fatalf("Admit(%s): expected immediate grant", tenant)
	}
	l, err := tk.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait(%s): %v", tenant, err)
	}
	return l
}

func TestPermissiveFabricGrantsImmediately(t *testing.T) {
	f := newTestFabric(t, Config{})
	for i := 0; i < 10; i++ {
		mustGrant(t, f, "anyone", 0)
	}
	snap := f.Snapshot()
	if snap.Running != 10 || snap.Admitted != 10 || snap.Shed != 0 {
		t.Fatalf("snapshot = %+v, want 10 running, 10 admitted, 0 shed", snap)
	}
}

func TestNewRequiresPools(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no pools should fail")
	}
}

func TestTenantQueueQuotaSheds429(t *testing.T) {
	f := newTestFabric(t, Config{
		DefaultQuota: Quota{MaxRunningWorkflows: 1, MaxQueuedWorkflows: 1},
	})
	mustGrant(t, f, "alice", 0) // running slot
	if tk, err := f.Admit("alice", 0); err != nil || tk.Granted() {
		t.Fatalf("second admit should queue: tk=%v err=%v", tk, err)
	}
	_, err := f.Admit("alice", 0)
	shed, ok := AsShed(err)
	if !ok || shed.HTTPStatus != 429 {
		t.Fatalf("third admit: got %v, want 429 ShedError", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed without Retry-After hint: %+v", shed)
	}
	// Another tenant is unaffected by alice's full queue.
	mustGrant(t, f, "bob", 0)
}

func TestGlobalQueueQuotaSheds503(t *testing.T) {
	f := newTestFabric(t, Config{
		MaxRunningWorkflows: 1,
		MaxQueuedWorkflows:  1,
	})
	mustGrant(t, f, "alice", 0)
	if tk, err := f.Admit("bob", 0); err != nil || tk.Granted() {
		t.Fatalf("bob should queue: %v err=%v", tk, err)
	}
	_, err := f.Admit("carol", 0)
	if shed, ok := AsShed(err); !ok || shed.HTTPStatus != 503 {
		t.Fatalf("carol: got %v, want 503 ShedError", err)
	}
}

func TestCloseSheds503(t *testing.T) {
	f := newTestFabric(t, Config{})
	f.Close()
	_, err := f.Admit("alice", 0)
	if shed, ok := AsShed(err); !ok || shed.HTTPStatus != 503 {
		t.Fatalf("admit after close: got %v, want 503 ShedError", err)
	}
}

func TestSheddingIsDeterministic(t *testing.T) {
	// The same submission sequence against the same quotas must produce the
	// same admit/shed outcomes — the admission decision depends only on the
	// call sequence, never on timing or randomness.
	run := func() []int {
		f := newTestFabric(t, Config{
			MaxRunningWorkflows: 2,
			MaxQueuedWorkflows:  2,
			DefaultQuota:        Quota{MaxRunningWorkflows: 1, MaxQueuedWorkflows: 1},
		})
		f.Hold()
		var outcomes []int
		for _, tenant := range []string{"a", "a", "a", "b", "b", "c", "c", "d"} {
			_, err := f.Admit(tenant, 0)
			switch shed, ok := AsShed(err); {
			case !ok:
				outcomes = append(outcomes, 202)
			default:
				outcomes = append(outcomes, shed.HTTPStatus)
			}
		}
		return outcomes
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("run %d: %v vs %v", i, got, first)
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run %d differs at %d: %v vs %v", i, j, got, first)
				}
			}
		}
	}
	// Held fabric: every admission queues. Per-tenant queue quota 1, global
	// queue quota 2: a queues, then sheds 429 twice (own quota, checked
	// before the global bound); b queues — global queue now full — b's
	// second sheds 429 (own quota again), and fresh tenants c, c, d hit the
	// fleet-wide bound and shed 503.
	want := []int{202, 429, 429, 202, 429, 503, 503, 503}
	for j := range first {
		if first[j] != want[j] {
			t.Fatalf("outcomes = %v, want %v", first, want)
		}
	}
}

func TestFairShareLowestDebtFirst(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 1})
	f.Hold()
	tkA, _ := f.Admit("a", 0)
	tkB, _ := f.Admit("b", 0)
	f.Unhold()
	// a arrived first: granted first.
	la, err := tkA.Wait(context.Background())
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	// Charge a heavily, release; b runs next.
	la.Done(100*time.Second, false)
	lb, err := tkB.Wait(context.Background())
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	lb.Done(time.Second, false)

	// Both queue again; b's debt (1s) is far below a's (100s), so b wins
	// even though a arrived first.
	f.Hold()
	tkA2, _ := f.Admit("a", 0)
	tkB2, _ := f.Admit("b", 0)
	f.Unhold()
	if tkA2.Granted() || !tkB2.Granted() {
		t.Fatalf("fair share: a granted=%v b granted=%v, want b first", tkA2.Granted(), tkB2.Granted())
	}
	lb2, _ := tkB2.Wait(context.Background())
	lb2.Done(time.Second, false)
	if !tkA2.Granted() {
		t.Fatal("a should be granted after b releases")
	}
}

func TestWeightScalesFairShare(t *testing.T) {
	f := newTestFabric(t, Config{
		MaxRunningWorkflows: 1,
		Quotas: map[string]Quota{
			"heavy": {Weight: 10},
			"light": {Weight: 1},
		},
	})
	// Equal usage -> heavy's debt is 10x smaller -> heavy wins the slot.
	lh := mustGrant(t, f, "heavy", 0)
	lh.Done(50*time.Second, false)
	ll := mustGrant(t, f, "light", 0)
	ll.Done(50*time.Second, false)

	f.Hold()
	tkL, _ := f.Admit("light", 0)
	tkH, _ := f.Admit("heavy", 0)
	f.Unhold()
	if tkL.Granted() || !tkH.Granted() {
		t.Fatalf("weighted fair share: light=%v heavy=%v, want heavy first",
			tkL.Granted(), tkH.Granted())
	}
}

func TestPriorityClassBeatsDebt(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 1})
	// Give "urgent" enormous debt; its higher priority class must still win.
	lu := mustGrant(t, f, "urgent", 0)
	lu.Done(1000*time.Second, false)

	f.Hold()
	tkBatch, _ := f.Admit("batch", 0)
	tkUrgent, _ := f.Admit("urgent", 5)
	f.Unhold()
	if tkBatch.Granted() || !tkUrgent.Granted() {
		t.Fatalf("priority: batch=%v urgent=%v, want urgent first",
			tkBatch.Granted(), tkUrgent.Granted())
	}
}

func TestBackfillSkipsQuotaBlockedTenant(t *testing.T) {
	f := newTestFabric(t, Config{
		MaxRunningWorkflows: 2,
		DefaultQuota:        Quota{MaxRunningWorkflows: 1},
	})
	mustGrant(t, f, "a", 0) // a is now at its per-tenant running quota
	f.Hold()
	tkA2, _ := f.Admit("a", 0) // blocked by a's quota, heads the queue
	tkB, _ := f.Admit("b", 0)  // behind a2, but b has spare quota
	f.Unhold()
	if tkA2.Granted() {
		t.Fatal("a2 must wait for a's quota")
	}
	if !tkB.Granted() {
		t.Fatal("b should backfill past the quota-blocked head-of-line a2")
	}
}

func TestCancelWhileQueuedDequeues(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 1})
	la := mustGrant(t, f, "a", 0)
	tkB, _ := f.Admit("b", 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tkB.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on canceled ctx: %v", err)
	}
	snap := f.Snapshot()
	if snap.Queued != 0 {
		t.Fatalf("queued = %d after cancel, want 0", snap.Queued)
	}
	var b TenantSnapshot
	for _, ts := range snap.Tenants {
		if ts.Tenant == "b" {
			b = ts
		}
	}
	if b.Canceled != 1 {
		t.Fatalf("b.Canceled = %d, want 1", b.Canceled)
	}
	// The slot was never leaked: releasing a's lease leaves capacity free
	// and a new admission grants immediately.
	la.Done(0, false)
	mustGrant(t, f, "c", 0)
}

func TestDoneIsIdempotent(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 1})
	l := mustGrant(t, f, "a", 0)
	l.Done(time.Second, false)
	l.Done(time.Second, false)
	snap := f.Snapshot()
	if snap.Running != 0 || snap.Completed != 1 {
		t.Fatalf("double Done corrupted counters: %+v", snap)
	}
	if snap.Tenants[0].UsageModelTime != time.Second {
		t.Fatalf("usage charged twice: %v", snap.Tenants[0].UsageModelTime)
	}
}

func TestSnapshotCounters(t *testing.T) {
	f := newTestFabric(t, Config{
		MaxRunningWorkflows: 1,
		DefaultQuota:        Quota{MaxQueuedWorkflows: 1, Weight: 2},
	})
	l := mustGrant(t, f, "a", 0)
	f.Admit("b", 0) // queues
	f.Admit("b", 0) // 429
	l.Done(4*time.Second, true)

	snap := f.Snapshot()
	if snap.Admitted != 2 || snap.Shed != 1 || snap.Failed != 1 {
		t.Fatalf("fleet counters: %+v", snap)
	}
	if len(snap.Tenants) != 2 || snap.Tenants[0].Tenant != "a" || snap.Tenants[1].Tenant != "b" {
		t.Fatalf("tenants not sorted: %+v", snap.Tenants)
	}
	a := snap.Tenants[0]
	if a.FairShareDebt != 2 { // 4s usage / weight 2
		t.Fatalf("a.FairShareDebt = %v, want 2", a.FairShareDebt)
	}
	b := snap.Tenants[1]
	if b.Shed429 != 1 || b.Running != 1 { // b was granted when a released
		t.Fatalf("b counters: %+v", b)
	}
}

func TestLeaseStampsSimulatorFromSharedPools(t *testing.T) {
	f := newTestFabric(t, Config{Pools: []condor.Pool{
		{Name: "usc", Slots: 2, Speed: 1},
		{Name: "wisc", Slots: 4, Speed: 2},
	}})
	l := mustGrant(t, f, "a", 0)
	sim, err := l.NewSimulator(SimOptions{TransferSlots: 1})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if sim == nil {
		t.Fatal("nil simulator")
	}
	if got := len(f.Pools()); got != 2 {
		t.Fatalf("Pools() = %d entries, want 2", got)
	}
	if l.Tenant() != "a" {
		t.Fatalf("Tenant() = %q", l.Tenant())
	}
}

func TestMaxRunningJobsComesFromQuota(t *testing.T) {
	f := newTestFabric(t, Config{Quotas: map[string]Quota{"a": {MaxRunningJobs: 3}}})
	if l := mustGrant(t, f, "a", 0); l.MaxRunningJobs() != 3 {
		t.Fatalf("MaxRunningJobs = %d, want 3", l.MaxRunningJobs())
	}
	if l := mustGrant(t, f, "b", 0); l.MaxRunningJobs() != 0 {
		t.Fatalf("default MaxRunningJobs = %d, want 0", l.MaxRunningJobs())
	}
}
