// Package fabric is the shared multi-tenant execution fabric: one
// persistent scheduler that multiplexes many concurrent workflows over a
// single set of Condor pools. It is the "millions of users" refactor of
// the ROADMAP — before it, every portal request stamped a private
// simulator and the service had no defense against concurrent load.
//
// The fabric owns three decisions:
//
//   - Admission. Submit-side, deterministic, O(1): a workflow is either
//     granted a slot immediately, queued (bounded per tenant and
//     fleet-wide), or shed with a typed ShedError carrying the HTTP
//     status (429 for a tenant over its own queue quota, 503 for a
//     fleet-wide overload) and a deterministic Retry-After hint. The
//     service never queues unboundedly.
//
//   - Scheduling. When a slot frees, the next workflow is chosen by
//     priority class first, then weighted fair share (lowest charged
//     model-time debt per weight unit), then arrival order. Tenants at
//     their running-workflow quota are skipped, so a lower-priority
//     tenant with spare quota backfills idle capacity instead of the
//     slot going unused behind a quota-blocked head-of-line workflow.
//     Usage is charged in model time (the deterministic discrete-event
//     makespan), so fair-share debt is reproducible across runs.
//
//   - Simulator stamping. The fabric is the only package allowed to
//     construct condor.Simulator values (enforced by the nvolint
//     fabricpool analyzer): every workflow's scheduler is stamped from
//     the one shared pool configuration, so no request can conjure
//     private capacity. Each workflow still gets its own simulator
//     instance — the per-workflow discrete-event clock is what keeps a
//     workflow's schedule, journal and output bytes independent of how
//     other tenants interleave on the fabric.
//
// Cancellation propagates end to end: a context canceled while queued
// dequeues the ticket (counted per tenant); canceled while running it
// reaches DAGMan's abort check and drains only that workflow's in-flight
// side effects.
package fabric

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/condor"
	"repro/internal/faults"
)

// Quota bounds one tenant's footprint on the fabric. Zero fields mean
// unlimited, so the zero Quota is the permissive single-tenant default.
type Quota struct {
	// MaxRunningWorkflows caps the tenant's concurrently executing
	// workflows; further admitted workflows wait in the queue.
	MaxRunningWorkflows int
	// MaxQueuedWorkflows caps the tenant's waiting workflows; admissions
	// beyond it are shed with a 429 ShedError.
	MaxQueuedWorkflows int
	// MaxRunningJobs caps the simultaneously submitted DAG nodes of each
	// of the tenant's workflows (DAGMan's -maxjobs throttle).
	MaxRunningJobs int
	// Weight is the fair-share weight (default 1): a tenant with weight 2
	// may consume twice the model time of a weight-1 tenant before its
	// queued work yields.
	Weight float64
	// Priority is the scheduling class; higher-priority queued workflows
	// are granted slots first, regardless of fair-share debt.
	Priority int
}

// Config parameterizes a fabric.
type Config struct {
	// Pools is the shared Condor pool set every stamped simulator runs
	// over. Required.
	Pools []condor.Pool
	// MaxRunningWorkflows caps concurrently executing workflows
	// fleet-wide (0 = unlimited).
	MaxRunningWorkflows int
	// MaxQueuedWorkflows caps the waiting workflows fleet-wide; admissions
	// beyond it are shed with a 503 ShedError (0 = unlimited).
	MaxQueuedWorkflows int
	// DefaultQuota applies to tenants absent from Quotas.
	DefaultQuota Quota
	// Quotas overrides the default per tenant name.
	Quotas map[string]Quota
	// RetryAfter is the base client back-off hint attached to ShedErrors,
	// scaled by the shedding tenant's queue depth so the hint grows
	// deterministically with pressure. Default 2s.
	RetryAfter time.Duration
	// Preemption lets the scheduler reclaim capacity: when a
	// higher-priority-class ticket waits and the fleet is saturated, the
	// lowest-priority preemptible lease (ties: highest fair-share debt,
	// then latest arrival) is revoked. The holder checkpoint-stops and
	// requeues via Lease.Preempted. Off by default.
	Preemption bool
}

// ShedError is a deterministic admission rejection: the request was
// refused (not queued), and the client should retry after the hint.
type ShedError struct {
	Tenant     string
	HTTPStatus int // 429 (tenant quota) or 503 (fleet overload / shutdown)
	RetryAfter time.Duration
	Reason     string
}

// Error renders the rejection.
func (e *ShedError) Error() string {
	return fmt.Sprintf("fabric: %s (tenant %q, status %d, retry after %s)",
		e.Reason, e.Tenant, e.HTTPStatus, e.RetryAfter)
}

// AsShed extracts a ShedError from an error chain.
func AsShed(err error) (*ShedError, bool) {
	var s *ShedError
	if errors.As(err, &s) {
		return s, true
	}
	return nil, false
}

// Errors returned by the fabric.
var (
	ErrClosed = errors.New("fabric: closed")
)

// tenantState is one tenant's live accounting.
type tenantState struct {
	name    string
	quota   Quota
	queued  int
	running int
	usage   time.Duration // charged model time across completed workflows

	admitted  int
	shed429   int
	shed503   int
	canceled  int
	completed int
	failed    int
	preempted int // leases revoked by the scheduler
	requeued  int // revoked workflows re-entering the queue
}

// debt is the tenant's weighted fair-share position: charged model
// seconds per weight unit. Lower debt wins the next slot.
func (ts *tenantState) debt() float64 {
	return ts.usage.Seconds() / ts.quota.Weight
}

// Fabric is the shared scheduler. Create with New; safe for concurrent
// use.
type Fabric struct {
	cfg Config

	mu       sync.Mutex
	closed   bool
	held     bool
	seq      int64
	running  int
	queued   int
	revoking int       // revoked leases not yet released (slots about to free)
	queue    []*Ticket // waiting tickets, arrival order
	leases   []*Lease  // live leases, grant order
	tenants  map[string]*tenantState
}

// New validates the configuration and builds a fabric.
func New(cfg Config) (*Fabric, error) {
	if len(cfg.Pools) == 0 {
		return nil, errors.New("fabric: at least one pool is required")
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 2 * time.Second
	}
	return &Fabric{cfg: cfg, tenants: map[string]*tenantState{}}, nil
}

// Pools returns a copy of the shared pool configuration.
func (f *Fabric) Pools() []condor.Pool {
	out := make([]condor.Pool, len(f.cfg.Pools))
	copy(out, f.cfg.Pools)
	return out
}

// tenant returns (creating on first use) a tenant's state. Caller holds mu.
func (f *Fabric) tenant(name string) *tenantState {
	ts, ok := f.tenants[name]
	if !ok {
		q := f.cfg.DefaultQuota
		if o, ok := f.cfg.Quotas[name]; ok {
			q = o
		}
		if q.Weight <= 0 {
			q.Weight = 1
		}
		ts = &tenantState{name: name, quota: q}
		f.tenants[name] = ts
	}
	return ts
}

// Ticket is one admitted workflow's place on the fabric: granted
// immediately at admission or waiting for a slot.
type Ticket struct {
	f        *Fabric
	ts       *tenantState
	priority int
	seq      int64

	lease   *Lease // set under f.mu once granted
	granted chan *Lease
	dead    bool // removed from the queue by cancellation
}

// Granted reports whether the ticket already holds a slot.
func (t *Ticket) Granted() bool {
	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	return t.lease != nil
}

// retryAfter computes the deterministic back-off hint for one tenant:
// the base hint scaled by the tenant's queue depth at the shed instant.
func (f *Fabric) retryAfter(ts *tenantState) time.Duration {
	return f.cfg.RetryAfter * time.Duration(1+ts.queued)
}

// Admit is the admission decision for one workflow: an immediate grant
// when capacity and quota allow, a bounded queue entry otherwise, or a
// typed ShedError. The decision is deterministic in the sequence of
// Admit/Done calls — no clocks, no randomness — which is what makes a
// shed set reproducible for a fixed submission order.
func (f *Fabric) Admit(tenant string, priority int) (*Ticket, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ts := f.tenant(tenant)
	if f.closed {
		ts.shed503++
		return nil, &ShedError{Tenant: tenant, HTTPStatus: 503,
			RetryAfter: f.retryAfter(ts), Reason: "fabric shutting down"}
	}
	f.seq++
	t := &Ticket{f: f, ts: ts, priority: priority, seq: f.seq, granted: make(chan *Lease, 1)}

	// Immediate grant: capacity free, tenant under quota, scheduling not
	// held. Queued waiters from other tenants cannot be preferable here —
	// if they were grantable, a prior schedule() would have granted them.
	if !f.held &&
		(f.cfg.MaxRunningWorkflows == 0 || f.running < f.cfg.MaxRunningWorkflows) &&
		(ts.quota.MaxRunningWorkflows == 0 || ts.running < ts.quota.MaxRunningWorkflows) {
		ts.admitted++
		f.grant(t)
		return t, nil
	}

	// Must wait: enforce the queue bounds, tenant quota first (the
	// client-correctable 429), then the fleet-wide overload 503.
	if q := ts.quota.MaxQueuedWorkflows; q > 0 && ts.queued >= q {
		ts.shed429++
		return nil, &ShedError{Tenant: tenant, HTTPStatus: 429,
			RetryAfter: f.retryAfter(ts), Reason: "tenant workflow queue full"}
	}
	if q := f.cfg.MaxQueuedWorkflows; q > 0 && f.queued >= q {
		ts.shed503++
		return nil, &ShedError{Tenant: tenant, HTTPStatus: 503,
			RetryAfter: f.retryAfter(ts), Reason: "fabric workflow queue full"}
	}
	ts.admitted++
	ts.queued++
	f.queued++
	f.queue = append(f.queue, t)
	f.preempt()
	return t, nil
}

// grant hands t a slot. Caller holds mu; t must not be in the queue.
func (f *Fabric) grant(t *Ticket) {
	t.ts.running++
	f.running++
	t.lease = &Lease{f: f, ts: t.ts, priority: t.priority, seq: t.seq,
		revoke: make(chan struct{})}
	f.leases = append(f.leases, t.lease)
	t.granted <- t.lease
}

// schedule grants slots to queued workflows while capacity lasts:
// priority class first, then lowest fair-share debt per weight, then
// arrival order; tenants at their running-workflow quota are skipped
// (backfill). Caller holds mu.
func (f *Fabric) schedule() {
	for !f.held && (f.cfg.MaxRunningWorkflows == 0 || f.running < f.cfg.MaxRunningWorkflows) {
		best := -1
		for i, t := range f.queue {
			if q := t.ts.quota.MaxRunningWorkflows; q > 0 && t.ts.running >= q {
				continue // over quota: later tenants may backfill
			}
			if best < 0 {
				best = i
				continue
			}
			b := f.queue[best]
			if t.priority != b.priority {
				if t.priority > b.priority {
					best = i
				}
				continue
			}
			if t.ts != b.ts && t.ts.debt() != b.ts.debt() {
				if t.ts.debt() < b.ts.debt() {
					best = i
				}
				continue
			}
			// Same class, same debt (or same tenant): arrival order; the
			// queue is already arrival-ordered, so keep the earlier one.
		}
		if best < 0 {
			return // every queued tenant is at quota
		}
		t := f.queue[best]
		f.queue = append(f.queue[:best], f.queue[best+1:]...)
		t.ts.queued--
		f.queued--
		f.grant(t)
	}
	f.preempt()
}

// waitersInGrantOrder returns the queue sorted by the grant preference
// (priority class desc, fair-share debt asc, arrival order). Caller
// holds mu; the queue itself is left in arrival order.
func (f *Fabric) waitersInGrantOrder() []*Ticket {
	out := make([]*Ticket, len(f.queue))
	copy(out, f.queue)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		if da, db := a.ts.debt(), b.ts.debt(); da != db {
			return da < db
		}
		return a.seq < b.seq
	})
	return out
}

// preempt reclaims capacity for waiting higher-priority-class work: while
// the fleet is saturated and a queued ticket outranks a live preemptible
// lease, the victim — lowest priority class, then highest fair-share
// debt, then latest arrival — is revoked. The holder observes the
// revocation (Lease.Revoked) and checkpoint-stops into Lease.Preempted,
// which frees the slot and requeues the workflow. Each pending revocation
// already covers one waiter, so a saturated burst never revokes more
// leases than it has uncovered waiters. Deterministic in the call
// sequence: no clocks, no randomness. Caller holds mu.
func (f *Fabric) preempt() {
	if !f.cfg.Preemption || f.held || f.closed {
		return
	}
	if f.cfg.MaxRunningWorkflows == 0 || f.running < f.cfg.MaxRunningWorkflows {
		return // capacity free: schedule() grants without reclaiming
	}
	covered := f.revoking
	for _, t := range f.waitersInGrantOrder() {
		if q := t.ts.quota.MaxRunningWorkflows; q > 0 && t.ts.running >= q {
			continue // a freed fleet slot would not make it runnable
		}
		if covered > 0 {
			covered--
			continue // a pending revocation already frees a slot for it
		}
		v := f.victimFor(t.priority)
		if v == nil {
			return // no lease outranked: lower-ranked waiters fare no better
		}
		f.revoke(v)
	}
}

// victimFor picks the preemption victim for a waiter of the given
// priority class: among live preemptible leases of a strictly lower
// class, the lowest class loses first, ties broken by highest fair-share
// debt, then latest arrival. Returns nil when no lease is outranked.
// Caller holds mu.
func (f *Fabric) victimFor(priority int) *Lease {
	var best *Lease
	for _, l := range f.leases {
		if l.revoked || !l.preemptible || l.priority >= priority {
			continue
		}
		if best == nil {
			best = l
			continue
		}
		if l.priority != best.priority {
			if l.priority < best.priority {
				best = l
			}
			continue
		}
		if da, db := l.ts.debt(), best.ts.debt(); da != db {
			if da > db {
				best = l
			}
			continue
		}
		if l.seq > best.seq {
			best = l
		}
	}
	return best
}

// revoke marks a lease for preemption and signals its holder. The slot
// stays occupied until the holder releases it (Preempted or Done); the
// revoking gauge covers the waiter in the meantime. Caller holds mu.
func (f *Fabric) revoke(l *Lease) {
	l.revoked = true
	l.ts.preempted++
	f.revoking++
	close(l.revoke)
}

// Wait blocks until the ticket is granted a slot, returning the Lease the
// workflow executes under. A context canceled while the ticket waits
// dequeues it (counted as canceled for its tenant) and returns the
// context's error — the deadline/cancellation propagation path from the
// web handler into the scheduler.
func (t *Ticket) Wait(ctx Context) (*Lease, error) {
	t.f.mu.Lock()
	if t.lease != nil {
		l := t.lease
		t.f.mu.Unlock()
		return l, nil
	}
	if t.dead {
		t.f.mu.Unlock()
		return nil, errors.New("fabric: ticket canceled")
	}
	t.f.mu.Unlock()

	select {
	case l := <-t.granted:
		return l, nil
	case <-ctx.Done():
	}

	t.f.mu.Lock()
	defer t.f.mu.Unlock()
	if t.lease != nil {
		// The grant raced the cancellation; honor it — the caller's dead
		// context aborts the workflow immediately and releases the slot.
		return t.lease, nil
	}
	for i, q := range t.f.queue {
		if q == t {
			t.f.queue = append(t.f.queue[:i], t.f.queue[i+1:]...)
			break
		}
	}
	t.dead = true
	t.ts.queued--
	t.f.queued--
	t.ts.canceled++
	return nil, ctx.Err()
}

// Context is the subset of context.Context the fabric needs; declared
// locally so the package's public surface states exactly what it uses.
type Context interface {
	Done() <-chan struct{}
	Err() error
}

// Lease is one granted workflow's hold on a fabric slot. Release it with
// Done when the workflow finishes (however it finishes), or with
// Preempted after a checkpoint-stop answers a revocation.
type Lease struct {
	f        *Fabric
	ts       *tenantState
	priority int
	seq      int64 // arrival order of the granting ticket

	preemptible bool
	revoked     bool
	revoke      chan struct{} // closed on revocation
	released    bool
}

// Tenant returns the tenant the lease is accounted to.
func (l *Lease) Tenant() string { return l.ts.name }

// Priority returns the scheduling class the lease was granted at.
func (l *Lease) Priority() int { return l.priority }

// MaxRunningJobs returns the tenant's per-workflow concurrent-job quota
// (0 = unlimited) — wire it into DAGMan's MaxInFlight throttle.
func (l *Lease) MaxRunningJobs() int { return l.ts.quota.MaxRunningJobs }

// SetPreemptible marks the lease eligible (or not) for scheduler
// revocation. Only holders that can checkpoint-stop — a journaled
// workflow — should opt in; the default is not preemptible.
func (l *Lease) SetPreemptible(ok bool) {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	if l.released || l.revoked {
		return
	}
	l.preemptible = ok
	if ok {
		// Newly revocable capacity may unblock a starved waiter.
		l.f.preempt()
	}
}

// Revoked returns a channel closed when the scheduler revokes the lease.
// The holder should checkpoint-stop at its next safe boundary and call
// Preempted.
func (l *Lease) Revoked() <-chan struct{} { return l.revoke }

// IsRevoked reports whether the scheduler has revoked the lease — the
// poll-style twin of Revoked for abort checks.
func (l *Lease) IsRevoked() bool {
	select {
	case <-l.revoke:
		return true
	default:
		return false
	}
}

// JobAllowance returns the lease's current concurrent-job throttle: the
// tenant's own MaxRunningJobs plus an equal integer share of the job
// headroom lent by tenants whose workflows are all waiting (queued with
// nothing running — their job quota is idle until a workflow slot frees,
// at which point the loan is reclaimed because the allowance is
// recomputed at every poll). 0 = unlimited. Deterministic in the
// Admit/Done/SetQuota call sequence.
func (l *Lease) JobAllowance() int {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	own := l.ts.quota.MaxRunningJobs
	if own == 0 || l.released {
		return own
	}
	lent := 0
	for _, ts := range l.f.tenants {
		// Order-insensitive sum, so map-range order cannot leak.
		if ts.quota.MaxRunningJobs > 0 && ts.running == 0 && ts.queued > 0 {
			lent += ts.quota.MaxRunningJobs
		}
	}
	if lent == 0 {
		return own
	}
	borrowers := 0
	for _, x := range l.f.leases {
		if x.ts.quota.MaxRunningJobs > 0 {
			borrowers++
		}
	}
	if borrowers == 0 {
		return own
	}
	return own + lent/borrowers
}

// SimOptions tune one stamped simulator.
type SimOptions struct {
	// Workers bounds concurrent side-effect execution (see condor.SetWorkers).
	Workers int
	// SubmitOverhead models the serialized per-task submission cost.
	SubmitOverhead time.Duration
	// TransferSlots gives each pool that many dedicated data-movement
	// slots (pools with an explicit setting keep it).
	TransferSlots int
	// Injector is the workflow's fault injector (nil = fault-free). A
	// per-workflow injector keeps fault schedules deterministic however
	// tenants interleave on the fabric.
	Injector *faults.Injector
}

// NewSimulator stamps one workflow's scheduler from the shared pool set.
// Each call returns a fresh simulator — a private discrete-event clock
// over the shared capacity model — which is what keeps one workflow's
// schedule and journal byte-stable regardless of co-tenants.
func (l *Lease) NewSimulator(opt SimOptions) (*condor.Simulator, error) {
	return l.f.NewSimulator(opt)
}

// NewSimulator is the package-level stamp (see Lease.NewSimulator). It is
// the only sanctioned call site of condor.NewSimulator outside tests —
// the invariant the nvolint fabricpool analyzer enforces.
func (f *Fabric) NewSimulator(opt SimOptions) (*condor.Simulator, error) {
	pools := make([]condor.Pool, len(f.cfg.Pools))
	copy(pools, f.cfg.Pools)
	if opt.TransferSlots > 0 {
		for i := range pools {
			if pools[i].TransferSlots == 0 {
				pools[i].TransferSlots = opt.TransferSlots
			}
		}
	}
	sim, err := condor.NewSimulator(pools...)
	if err != nil {
		return nil, err
	}
	sim.SetInjector(opt.Injector)
	if opt.Workers > 0 {
		sim.SetWorkers(opt.Workers)
	}
	sim.SetSubmitOverhead(opt.SubmitOverhead)
	return sim, nil
}

// release frees the slot and charges usage. Caller holds mu and has
// checked l.released.
func (l *Lease) release(usage time.Duration) {
	l.released = true
	l.ts.running--
	l.f.running--
	if l.revoked {
		l.f.revoking--
	}
	for i, x := range l.f.leases {
		if x == l {
			l.f.leases = append(l.f.leases[:i], l.f.leases[i+1:]...)
			break
		}
	}
	if usage > 0 {
		l.ts.usage += usage
	}
}

// Done releases the slot, charges the workflow's model-time usage to the
// tenant's fair-share account, and schedules waiting work. failed records
// the outcome in the tenant counters. Done is idempotent.
func (l *Lease) Done(usage time.Duration, failed bool) {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	if l.released {
		return
	}
	l.release(usage)
	if failed {
		l.ts.failed++
	} else {
		l.ts.completed++
	}
	l.f.schedule()
}

// Preempted is the revoked holder's half of a preemption: the workflow
// has checkpoint-stopped, so release the slot, charge the model time
// consumed so far, and re-enter the queue at the original priority class
// with a fresh arrival position. The requeued ticket bypasses the
// admission shed bounds — the workflow was already admitted once — but it
// does count in the tenant's queue depth, so Retry-After hints and
// 429/503 decisions for new arrivals see the displaced work. Returns the
// ticket to Wait on (nil if the lease was already released).
func (l *Lease) Preempted(usage time.Duration) *Ticket {
	l.f.mu.Lock()
	defer l.f.mu.Unlock()
	if l.released {
		return nil
	}
	f := l.f
	l.release(usage)
	l.ts.requeued++
	f.seq++
	t := &Ticket{f: f, ts: l.ts, priority: l.priority, seq: f.seq,
		granted: make(chan *Lease, 1)}
	l.ts.queued++
	f.queued++
	f.queue = append(f.queue, t)
	f.schedule()
	return t
}

// SetQuota replaces a tenant's quota at runtime. The new bounds apply to
// the next scheduling decision — workflows already running keep their
// slots (rebalancing never yanks a compliant tenant; at most the tenant
// stops receiving new grants until it drains below the new caps). A
// non-positive Weight is normalized to 1. Deterministic in the call
// sequence, like every other fabric mutation.
func (f *Fabric) SetQuota(tenant string, q Quota) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if q.Weight <= 0 {
		q.Weight = 1
	}
	ts := f.tenant(tenant)
	ts.quota = q
	f.schedule()
}

// SetWeight adjusts only a tenant's fair-share weight at runtime,
// re-ranking its queued work at the next scheduling decision.
func (f *Fabric) SetWeight(tenant string, w float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w <= 0 {
		w = 1
	}
	f.tenant(tenant).quota.Weight = w
	f.schedule()
}

// Hold pauses slot grants: admissions still queue (and shed when bounds
// overflow) but nothing starts until Unhold. Tests use it to make a
// submission burst's shed set independent of execution timing.
func (f *Fabric) Hold() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.held = true
}

// Unhold resumes slot grants and schedules queued work.
func (f *Fabric) Unhold() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.held = false
	f.schedule()
}

// Close sheds all future admissions with 503. Queued and running
// workflows are left to finish.
func (f *Fabric) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
}

// TenantSnapshot is one tenant's counter set at a snapshot instant.
type TenantSnapshot struct {
	Tenant string
	// Cumulative outcomes.
	Admitted  int // granted or queued (not shed)
	Shed      int // total rejections
	Shed429   int // tenant queue quota rejections
	Shed503   int // fleet overload / shutdown rejections
	Canceled  int // dequeued by cancellation while waiting
	Completed int
	Failed    int
	Preempted int // leases revoked by the scheduler
	Requeued  int // revoked workflows that re-entered the queue
	// Live gauges.
	Queued  int
	Running int
	// Fair-share position.
	UsageModelTime time.Duration
	FairShareDebt  float64 // model seconds per weight unit
}

// FleetSnapshot aggregates the fabric's counters — the /stats payload of
// the multi-tenant service.
type FleetSnapshot struct {
	Running   int
	Queued    int
	Admitted  int
	Shed      int
	Completed int
	Failed    int
	Preempted int
	Requeued  int
	Tenants   []TenantSnapshot // sorted by tenant name
}

// Snapshot returns the fleet-wide and per-tenant counters.
func (f *Fabric) Snapshot() FleetSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := FleetSnapshot{Running: f.running, Queued: f.queued}
	names := make([]string, 0, len(f.tenants))
	for name := range f.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := f.tenants[name]
		snap := TenantSnapshot{
			Tenant:         name,
			Admitted:       ts.admitted,
			Shed429:        ts.shed429,
			Shed503:        ts.shed503,
			Shed:           ts.shed429 + ts.shed503,
			Canceled:       ts.canceled,
			Completed:      ts.completed,
			Failed:         ts.failed,
			Preempted:      ts.preempted,
			Requeued:       ts.requeued,
			Queued:         ts.queued,
			Running:        ts.running,
			UsageModelTime: ts.usage,
			FairShareDebt:  ts.debt(),
		}
		out.Admitted += snap.Admitted
		out.Shed += snap.Shed
		out.Completed += snap.Completed
		out.Failed += snap.Failed
		out.Preempted += snap.Preempted
		out.Requeued += snap.Requeued
		out.Tenants = append(out.Tenants, snap)
	}
	return out
}
