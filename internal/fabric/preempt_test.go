package fabric

import (
	"context"
	"testing"
	"time"
)

// grantPreemptible admits, waits, and opts the lease into preemption —
// the posture of every journaled workflow on a preemption-enabled fabric.
func grantPreemptible(t *testing.T, f *Fabric, tenant string, priority int) *Lease {
	t.Helper()
	l := mustGrant(t, f, tenant, priority)
	l.SetPreemptible(true)
	return l
}

func TestPreemptRevokesLowestPriorityVictim(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 2, Preemption: true})
	low := grantPreemptible(t, f, "bulk", 0)
	mid := grantPreemptible(t, f, "batch", 2)

	tkHigh, err := f.Admit("urgent", 5)
	if err != nil {
		t.Fatalf("Admit(urgent): %v", err)
	}
	if tkHigh.Granted() {
		t.Fatal("urgent should queue while the fleet is saturated")
	}
	if !low.IsRevoked() {
		t.Fatal("lowest-priority lease should be revoked for the urgent waiter")
	}
	if mid.IsRevoked() {
		t.Fatal("higher-priority victim chosen over the lowest class")
	}

	// The victim checkpoint-stops and requeues; the urgent waiter takes
	// the freed slot immediately.
	tkLow := low.Preempted(3 * time.Second)
	if tkLow == nil {
		t.Fatal("Preempted returned no requeue ticket")
	}
	if !tkHigh.Granted() {
		t.Fatal("urgent not granted after the victim released its slot")
	}
	if tkLow.Granted() {
		t.Fatal("requeued victim must wait for capacity")
	}

	snap := f.Snapshot()
	if snap.Preempted != 1 || snap.Requeued != 1 {
		t.Fatalf("fleet preemption counters: %+v", snap)
	}
	for _, ts := range snap.Tenants {
		if ts.Tenant == "bulk" && ts.UsageModelTime != 3*time.Second {
			t.Fatalf("victim usage not charged: %+v", ts)
		}
	}

	// Capacity frees: the victim resumes through the ordinary queue.
	mid.Done(time.Second, false)
	if !tkLow.Granted() {
		t.Fatal("requeued victim not rescheduled after a slot freed")
	}
}

func TestPreemptVictimTieBreaksDebtThenArrival(t *testing.T) {
	// Same priority class: the highest fair-share debt loses first;
	// equal debt (same tenant): the latest arrival loses.
	f := newTestFabric(t, Config{MaxRunningWorkflows: 3, Preemption: true})
	seed := grantPreemptible(t, f, "indebted", 0)
	seed.Done(100*time.Second, false) // give "indebted" heavy debt

	lean1 := grantPreemptible(t, f, "lean", 0)
	lean2 := grantPreemptible(t, f, "lean", 0)
	indebted := grantPreemptible(t, f, "indebted", 0)

	if _, err := f.Admit("urgent", 5); err != nil {
		t.Fatalf("Admit(urgent): %v", err)
	}
	if !indebted.IsRevoked() || lean1.IsRevoked() || lean2.IsRevoked() {
		t.Fatal("highest-debt victim should lose the debt tie-break")
	}

	if _, err := f.Admit("urgent", 5); err != nil {
		t.Fatalf("Admit(urgent): %v", err)
	}
	if !lean2.IsRevoked() || lean1.IsRevoked() {
		t.Fatal("latest arrival should lose the equal-debt tie-break")
	}
}

func TestPreemptSkipsNonPreemptibleAndEqualClass(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 2, Preemption: true})
	pinned := mustGrant(t, f, "pinned", 0) // never opted in
	peer := grantPreemptible(t, f, "peer", 5)

	if _, err := f.Admit("urgent", 5); err != nil {
		t.Fatalf("Admit(urgent): %v", err)
	}
	if pinned.IsRevoked() {
		t.Fatal("non-preemptible lease revoked")
	}
	if peer.IsRevoked() {
		t.Fatal("equal-priority lease revoked: preemption must require a strictly higher class")
	}
}

func TestPreemptRevokesOncePerUncoveredWaiter(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 2, Preemption: true})
	v1 := grantPreemptible(t, f, "bulk", 0)
	v2 := grantPreemptible(t, f, "bulk", 0)

	if _, err := f.Admit("urgent", 5); err != nil {
		t.Fatalf("Admit(urgent #1): %v", err)
	}
	if got := f.Snapshot().Preempted; got != 1 {
		t.Fatalf("one waiter caused %d revocations, want 1", got)
	}
	// A second low-priority arrival must not trigger another revocation:
	// the pending one covers the only waiter that outranks anyone.
	if _, err := f.Admit("bulk", 0); err != nil {
		t.Fatalf("Admit(bulk): %v", err)
	}
	if got := f.Snapshot().Preempted; got != 1 {
		t.Fatalf("covered waiter caused extra revocation: %d", got)
	}
	// A second urgent waiter is uncovered and claims the second victim.
	if _, err := f.Admit("urgent", 5); err != nil {
		t.Fatalf("Admit(urgent #2): %v", err)
	}
	if got := f.Snapshot().Preempted; got != 2 {
		t.Fatalf("second waiter: %d revocations, want 2", got)
	}
	if !v1.IsRevoked() || !v2.IsRevoked() {
		t.Fatal("both bulk leases should be revoked for two urgent waiters")
	}
}

func TestSetQuotaAppliesAtNextDecisionNeverYanks(t *testing.T) {
	f := newTestFabric(t, Config{
		Quotas: map[string]Quota{"a": {MaxRunningWorkflows: 2}},
	})
	l1 := mustGrant(t, f, "a", 0)
	l2 := mustGrant(t, f, "a", 0)

	// Tighten the quota below current usage: both keep running.
	f.SetQuota("a", Quota{MaxRunningWorkflows: 1})
	if snap := f.Snapshot(); snap.Running != 2 {
		t.Fatalf("SetQuota yanked a running workflow: %+v", snap)
	}
	tk3, _ := f.Admit("a", 0)
	if tk3.Granted() {
		t.Fatal("admission above the tightened quota should queue")
	}
	// Draining to 1 leaves the tenant at the new cap: still queued.
	l1.Done(time.Second, false)
	if tk3.Granted() {
		t.Fatal("tenant at new quota: queued work must keep waiting")
	}
	l2.Done(time.Second, false)
	if !tk3.Granted() {
		t.Fatal("queued work not granted after draining below the new quota")
	}
}

func TestSetWeightRebalancesQueuedWork(t *testing.T) {
	f := newTestFabric(t, Config{MaxRunningWorkflows: 1})
	blocker := mustGrant(t, f, "z", 0)
	// Charge a and b equal prior usage, then queue them both: a arrived
	// first and would win the next slot on the arrival tie-break.
	chargeUsage(f, "a", 10*time.Second)
	chargeUsage(f, "b", 10*time.Second)
	tkA, _ := f.Admit("a", 0)
	tkB, _ := f.Admit("b", 0)
	f.SetWeight("b", 10) // b's debt shrinks 10x: b now outranks a
	blocker.Done(time.Second, false)
	if tkA.Granted() || !tkB.Granted() {
		t.Fatalf("SetWeight did not rebalance: a=%v b=%v, want b first",
			tkA.Granted(), tkB.Granted())
	}
}

// chargeUsage seeds a tenant's fair-share account with prior model time.
func chargeUsage(f *Fabric, tenant string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tenant(tenant).usage += d
}

func TestJobAllowanceLendsIdleHeadroom(t *testing.T) {
	f := newTestFabric(t, Config{
		MaxRunningWorkflows: 1,
		Quotas: map[string]Quota{
			"a": {MaxRunningJobs: 4},
			"b": {MaxRunningJobs: 6},
		},
	})
	la := mustGrant(t, f, "a", 0)
	if got := la.JobAllowance(); got != 4 {
		t.Fatalf("no lenders: JobAllowance = %d, want own quota 4", got)
	}
	// b is quota-blocked (fleet slot taken) with queued work: its idle job
	// headroom is lent to the running lease.
	tkB, _ := f.Admit("b", 0)
	if got := la.JobAllowance(); got != 10 {
		t.Fatalf("lent headroom: JobAllowance = %d, want 4+6=10", got)
	}
	// Reclaim on demand: the loan vanishes as soon as the lender runs.
	la.Done(time.Second, false)
	lb, err := tkB.Wait(context.Background())
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	if got := lb.JobAllowance(); got != 6 {
		t.Fatalf("after reclaim: JobAllowance = %d, want own quota 6", got)
	}
	lb.Done(time.Second, false)
	// Unlimited tenants stay unlimited and never borrow.
	lc := mustGrant(t, f, "c", 0)
	if got := lc.JobAllowance(); got != 0 {
		t.Fatalf("unlimited tenant: JobAllowance = %d, want 0", got)
	}
}

func TestSheddingDeterministicWithPreemptionEnabled(t *testing.T) {
	// The PR 6 shedding replay must hold verbatim on a preemption-enabled
	// fabric: a held fabric never revokes, and the admission decision
	// remains a pure function of the call sequence.
	run := func() []int {
		f := newTestFabric(t, Config{
			MaxRunningWorkflows: 2,
			MaxQueuedWorkflows:  2,
			DefaultQuota:        Quota{MaxRunningWorkflows: 1, MaxQueuedWorkflows: 1},
			Preemption:          true,
		})
		f.Hold()
		var outcomes []int
		for _, tenant := range []string{"a", "a", "a", "b", "b", "c", "c", "d"} {
			_, err := f.Admit(tenant, 0)
			if shed, ok := AsShed(err); ok {
				outcomes = append(outcomes, shed.HTTPStatus)
			} else {
				outcomes = append(outcomes, 202)
			}
		}
		return outcomes
	}
	want := []int{202, 429, 429, 202, 429, 503, 503, 503}
	for i := 0; i < 3; i++ {
		got := run()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: outcomes = %v, want %v", i, got, want)
			}
		}
	}
}

func TestRequeuedVictimCountsInShedDecisions(t *testing.T) {
	// Satellite: Retry-After for preempted-then-requeued workflows. A
	// requeued victim occupies its tenant's queue depth, so subsequent
	// admissions shed against (and scale their hints by) the displaced
	// work — not a phantom empty queue.
	f := newTestFabric(t, Config{
		MaxRunningWorkflows: 1,
		DefaultQuota:        Quota{MaxQueuedWorkflows: 1},
		RetryAfter:          2 * time.Second,
		Preemption:          true,
	})
	victim := grantPreemptible(t, f, "bulk", 0)
	tkHigh, _ := f.Admit("urgent", 5)
	if !victim.IsRevoked() {
		t.Fatal("victim not revoked")
	}
	tkV := victim.Preempted(time.Second)
	if !tkHigh.Granted() {
		t.Fatal("urgent not granted after preemption")
	}
	if tkV.Granted() {
		t.Fatal("requeued victim should wait")
	}

	// bulk's queue depth is 1 (the requeued victim): the next bulk
	// admission sheds 429 with the depth-scaled hint.
	_, err := f.Admit("bulk", 0)
	shed, ok := AsShed(err)
	if !ok || shed.HTTPStatus != 429 {
		t.Fatalf("admit over requeued victim: got %v, want 429", err)
	}
	if want := 2 * time.Second * 2; shed.RetryAfter != want {
		t.Fatalf("Retry-After = %v, want %v (scaled by requeued depth)", shed.RetryAfter, want)
	}
}
