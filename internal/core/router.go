// Package core assembles the paper's complete end-to-end system — simulated
// archives, replica and transformation catalogs, GridFTP fabric, Condor
// pools, the Pegasus compute web service and the user portal — into a single
// Testbed, and provides the science analysis (the Dressler
// morphology–density relation of Figure 7) on the resulting tables.
package core

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
)

// hostRouter routes HTTP requests to in-process handlers by virtual host
// name, so the portal, archives and compute service talk real HTTP semantics
// without opening sockets. This mirrors the paper's deployment (portal at
// STScI, compute at ISI, archives everywhere) inside one process.
type hostRouter map[string]http.Handler

// RoundTrip implements http.RoundTripper.
func (r hostRouter) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := r[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("core: no service at host %q", req.URL.Host)
	}
	rw := &memResponse{header: http.Header{}, code: http.StatusOK}
	h.ServeHTTP(rw, req)
	if req.Body != nil {
		_ = req.Body.Close()
	}
	return &http.Response{
		Status:     http.StatusText(rw.code),
		StatusCode: rw.code,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     rw.header,
		Body:       io.NopCloser(bytes.NewReader(rw.buf.Bytes())),
		Request:    req,
	}, nil
}

// memResponse is the in-memory http.ResponseWriter behind hostRouter.
type memResponse struct {
	header http.Header
	buf    bytes.Buffer
	code   int
	wrote  bool
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(code int) {
	if !m.wrote {
		m.code = code
		m.wrote = true
	}
}

func (m *memResponse) Write(p []byte) (int, error) {
	m.wrote = true
	return m.buf.Write(p)
}
