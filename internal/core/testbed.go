package core

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/condor"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/gridftp"
	"repro/internal/httpclient"
	"repro/internal/mds"
	"repro/internal/myproxy"
	"repro/internal/pegasus"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/resilience"
	"repro/internal/rls"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/tableops"
	"repro/internal/tcat"
	"repro/internal/webservice"
)

// Virtual host names of the testbed's services, mirroring the institutions
// of the paper's deployment.
const (
	HostMAST     = "mast.nvo"     // DSS images + cutouts + cone search (STScI)
	HostNED      = "ned.nvo"      // secondary catalog (IPAC)
	HostHEASARC  = "heasarc.nvo"  // X-ray images (ROSAT/Chandra stand-in)
	HostCompute  = "compute.isi"  // Pegasus web service (ISI)
	HostRLS      = "rls.isi"      // replica location service front-end
	HostRegistry = "registry.nvo" // resource registry (§5 future work)
	HostTableOps = "tableops.nvo" // generic VOTable operations (§5 future work)
)

// Config parameterizes a testbed.
type Config struct {
	// ClusterSpecs generate the sky. Defaults to skysim.StandardClusters()
	// truncated to the first two (keep the default light).
	ClusterSpecs []skysim.Spec
	// Pools are the Condor pools; default: the paper's three (USC,
	// Wisconsin, Fermilab).
	Pools []condor.Pool
	// Seed drives all randomness.
	Seed int64
	// FailureRate injects transient job failures in the compute service.
	FailureRate float64
	// StrictFaults selects the rejected fault-tolerance design (A4).
	StrictFaults bool
	// CacheImageSearch enables the portal's image-search cache.
	CacheImageSearch bool
	// UseRegistryDiscovery makes the portal discover its services from the
	// resource registry instead of hard-coded endpoints (§5 future work).
	UseRegistryDiscovery bool
	// RequireProxy gates the compute service behind a MyProxy credential
	// (§4.3.1 item 5); the testbed delegates one for user "nvoportal".
	RequireProxy bool
	// BatchFetch makes the compute service collect galaxy images through
	// the batched cutout interface instead of one request per galaxy.
	BatchFetch bool
	// Workers bounds how many leaf-job side effects the compute service's
	// Condor simulator executes concurrently (and how many image fetches it
	// issues at once). 0 or 1 runs serially; the simulated clock, schedule,
	// and science output are identical either way.
	Workers int
	// MaxParallelQueries bounds the portal's concurrent archive calls.
	// 0 takes the portal default; 1 forces serial queries.
	MaxParallelQueries int
	// Faults, when set, is installed on every fault point of the testbed:
	// GridFTP transfers, both archives' HTTP endpoints, RLS lookups and
	// registrations, and Condor job execution inside the compute service.
	// Nil runs fault-free at zero cost.
	Faults *faults.Injector
	// FaultsFor, when set, supplies the compute service a per-workflow
	// Condor fault injector (tenant, cluster) so concurrent workflows keep
	// independent, deterministic fault schedules. Unlike Faults it is NOT
	// installed on the shared substrate (GridFTP/RLS/archives).
	FaultsFor func(tenant, cluster string) *faults.Injector
	// Fabric, when set, is the shared multi-tenant execution fabric the
	// compute service admits and schedules workflows on; nil gives the
	// service a private permissive fabric over Pools.
	Fabric *fabric.Fabric
	// Resilience enables the retry/backoff/circuit-breaker stack: the
	// portal retries archive calls and degrades gracefully, the compute
	// service retries DAG nodes under a budgeted policy and fails transfers
	// over to other RLS replicas. The shared breaker registry is exposed as
	// Testbed.Breakers.
	Resilience bool
	// MirrorSite, when non-empty, makes the compute service replicate every
	// cached image to this second GridFTP site (and register both PFNs in
	// the RLS) so transfer nodes have a replica to fail over to.
	MirrorSite string
	// JournalDir, when non-empty, makes the compute service crash-safe: the
	// planned DAG, the generated VDL and a write-ahead journal are persisted
	// there, and a killed run can be finished with Compute.Resume.
	JournalDir string
	// CrashAfterEvents, when > 0, kills the workflow after that many journal
	// appends (the kill-and-resume campaign's deterministic crash switch).
	CrashAfterEvents int
	// LocalityPlanning switches Pegasus to replica-cost site selection:
	// jobs run where their input replicas already live, and stage-in nodes
	// are only planned for genuinely remote inputs.
	LocalityPlanning bool
	// ClusterSize batches up to this many ready leaf jobs per site into one
	// Condor task (Pegasus horizontal clustering). <= 1 keeps one task per
	// node.
	ClusterSize int
	// SchedOverhead models the serialized per-task Condor-G/GRAM submission
	// cost; zero keeps the instant-start legacy model.
	SchedOverhead time.Duration
	// TransferSlots gives every pool that many dedicated data-movement
	// slots so stage-ins overlap computation.
	TransferSlots int
	// WaveSize, when > 0, switches the compute service to survey-scale wave
	// execution: images are staged, planned and executed in waves of at most
	// this many galaxies, bounding peak memory by the wave rather than the
	// request. Output bytes are identical to the monolithic path.
	WaveSize int
	// PageSize, when > 0, makes the portal consume the archives' cone-search
	// and SIA endpoints in pages of this many rows instead of one unbounded
	// response per archive.
	PageSize int
	// Priority is the default fabric scheduling class the portal stamps on
	// its compute submissions. Meaningful on a shared Fabric with priority
	// classes (and, when the fabric enables preemption, a higher class may
	// checkpoint-preempt a lower one); zero is the default class.
	Priority int
}

// Testbed is the fully wired end-to-end system.
type Testbed struct {
	Clusters []*skysim.Cluster
	MAST     *services.Archive
	NED      *services.Archive

	RLS *rls.RLS
	TC  *tcat.Catalog
	FTP *gridftp.Service
	MDS *mds.Service

	Registry *registry.Registry
	MyProxy  *myproxy.Repository

	Compute *webservice.Service
	Portal  *portal.Portal

	// Breakers is the circuit-breaker registry shared by the portal and the
	// compute service; nil unless Config.Resilience is set.
	Breakers *resilience.Registry

	// Client routes the virtual hosts in-process; every component uses it.
	Client *http.Client
}

// MyProxyUser and MyProxyPass are the delegation the testbed installs when
// RequireProxy is set.
const (
	MyProxyUser = "nvoportal"
	MyProxyPass = "nvo-demo-pass"
)

// DefaultPools are the paper's three Condor pools with plausible 2003-era
// sizes.
func DefaultPools() []condor.Pool {
	return []condor.Pool{
		{Name: "usc", Slots: 20},
		{Name: "wisc", Slots: 30},
		{Name: "fnal", Slots: 20},
	}
}

// ComputeSites returns the pool names jobs can run on.
func ComputeSites(pools []condor.Pool) []string {
	out := make([]string, len(pools))
	for i, p := range pools {
		out[i] = p.Name
	}
	return out
}

// NewTestbed generates the sky and wires every service together.
func NewTestbed(cfg Config) (*Testbed, error) {
	if len(cfg.ClusterSpecs) == 0 {
		cfg.ClusterSpecs = skysim.StandardClusters()[:2]
	}
	if len(cfg.Pools) == 0 {
		cfg.Pools = DefaultPools()
	}

	tb := &Testbed{
		RLS:      rls.New(),
		TC:       tcat.New(),
		FTP:      gridftp.NewService(gridftp.Network{}),
		MDS:      mds.New(),
		Registry: registry.New(),
		MyProxy:  myproxy.New(),
	}

	// Sky + archives.
	for _, spec := range cfg.ClusterSpecs {
		tb.Clusters = append(tb.Clusters, skysim.Generate(spec))
	}
	tb.MAST = services.NewArchive("mast", tb.Clusters...)
	tb.NED = services.NewArchive("ned", tb.Clusters...)

	// Install the fault injector on every layer that exposes a fault point.
	if cfg.Faults != nil {
		tb.FTP.SetInjector(cfg.Faults)
		tb.RLS.SetInjector(cfg.Faults)
		tb.MAST.SetInjector(cfg.Faults)
		tb.NED.SetInjector(cfg.Faults)
	}
	if cfg.Resilience {
		tb.Breakers = resilience.NewRegistry(resilience.BreakerConfig{})
	}

	// Grid information services.
	for _, p := range cfg.Pools {
		if err := tb.MDS.Register(mds.SiteInfo{
			Name:        p.Name,
			Slots:       p.Slots,
			GridFTPBase: "gridftp://" + p.Name,
		}); err != nil {
			return nil, err
		}
		if err := tb.TC.Add(tcat.Entry{Transformation: "galMorph", Site: p.Name, Path: "/nvo/bin/galMorph"}); err != nil {
			return nil, err
		}
		if err := tb.TC.Add(tcat.Entry{Transformation: "concatVOT", Site: p.Name, Path: "/nvo/bin/concatVOT"}); err != nil {
			return nil, err
		}
	}

	// HTTP fabric: every virtual host resolves in-process.
	router := hostRouter{}
	tb.Client = httpclient.New(router)

	wsCfg := webservice.Config{
		RLS:          tb.RLS,
		TC:           tb.TC,
		GridFTP:      tb.FTP,
		Pools:        cfg.Pools,
		CacheSite:    "isi",
		HTTPClient:   tb.Client,
		Seed:         cfg.Seed,
		FailureRate:  cfg.FailureRate,
		StrictFaults: cfg.StrictFaults,
		MaxRetries:   5,
		BatchFetch:   cfg.BatchFetch,
		MirrorSite:   cfg.MirrorSite,
		Faults:       cfg.Faults,
		FaultsFor:    cfg.FaultsFor,
		Fabric:       cfg.Fabric,
		Workers:      cfg.Workers,

		JournalDir:       cfg.JournalDir,
		CrashAfterEvents: cfg.CrashAfterEvents,

		ClusterSize:   cfg.ClusterSize,
		SchedOverhead: cfg.SchedOverhead,
		TransferSlots: cfg.TransferSlots,
		WaveSize:      cfg.WaveSize,
	}
	if cfg.LocalityPlanning {
		wsCfg.Selection = pegasus.SelectLocality
	}
	if cfg.Resilience {
		wsCfg.Breakers = tb.Breakers
		wsCfg.RetryPolicy = &resilience.Policy{MaxAttempts: 6, Seed: cfg.Seed}
	}
	if cfg.RequireProxy {
		if err := tb.MyProxy.Delegate(MyProxyUser, MyProxyPass,
			"/C=US/O=NVO/CN=Portal Service", 12*time.Hour, time.Hour); err != nil {
			return nil, err
		}
		repo := tb.MyProxy
		wsCfg.Proxy = func() (myproxy.Proxy, error) {
			return repo.Retrieve(MyProxyUser, MyProxyPass, time.Hour)
		}
	}
	compute, err := webservice.New(wsCfg)
	if err != nil {
		return nil, err
	}
	tb.Compute = compute

	// Publish every service in the resource registry (§5 future work),
	// whether or not the portal uses discovery — other clients can.
	for _, e := range []registry.Entry{
		{ID: "ivo://mast.nvo/dss-sia", Type: registry.TypeSIA, Title: "Digitized Sky Survey images",
			DataCenter: "MAST", Collection: "DSS", BaseURL: "http://" + HostMAST + "/sia"},
		{ID: "ivo://heasarc.nvo/xray-sia", Type: registry.TypeSIA, Title: "ROSAT/Chandra X-ray images",
			DataCenter: "HEASARC", Collection: "ROSAT", BaseURL: "http://" + HostHEASARC + "/sia"},
		{ID: "ivo://ipac.nvo/ned-cone", Type: registry.TypeConeSearch, Title: "NASA Extragalactic Database",
			DataCenter: "IPAC", Collection: "NED", BaseURL: "http://" + HostNED + "/cone"},
		{ID: "ivo://mast.nvo/dss-cone", Type: registry.TypeConeSearch, Title: "DSS source catalog",
			DataCenter: "MAST", Collection: "DSS", BaseURL: "http://" + HostMAST + "/cone"},
		{ID: "ivo://mast.nvo/cutout", Type: registry.TypeCutout, Title: "DSS image cutout service",
			DataCenter: "MAST", Collection: "DSS", BaseURL: "http://" + HostMAST + "/siacut"},
		{ID: "ivo://isi.nvo/galmorph", Type: registry.TypeCompute, Title: "Galaxy Morphology compute service",
			DataCenter: "ISI", BaseURL: "http://" + HostCompute},
		{ID: "ivo://nvo/tableops", Type: registry.TypeTableOps, Title: "VOTable operations",
			DataCenter: "NVO", BaseURL: "http://" + HostTableOps},
	} {
		if err := tb.Registry.Register(e); err != nil {
			return nil, err
		}
	}

	var entries []portal.ClusterEntry
	for _, c := range tb.Clusters {
		entries = append(entries, portal.ClusterEntry{
			Name:            c.Name,
			Center:          c.Center,
			Redshift:        c.Redshift,
			SearchRadiusDeg: 8*c.CoreRadiusDeg + 0.01,
		})
	}
	archiveHandler := tb.MAST.Handler()
	router[HostMAST] = archiveHandler
	router[HostHEASARC] = archiveHandler // X-ray comes from the same sky
	router[HostNED] = tb.NED.Handler()
	router[HostCompute] = compute.Handler()
	router[HostRLS] = rls.Handler(tb.RLS)
	router[HostRegistry] = registry.Handler(tb.Registry)
	router[HostTableOps] = tableops.Handler()

	var p *portal.Portal
	if cfg.UseRegistryDiscovery {
		regClient := &registry.Client{Base: "http://" + HostRegistry, HTTP: tb.Client}
		pCfg, err := portal.DiscoverConfig(regClient, entries, tb.Client)
		if err != nil {
			return nil, err
		}
		pCfg.CacheImageSearch = cfg.CacheImageSearch
		pCfg.MaxParallelQueries = cfg.MaxParallelQueries
		pCfg.PageSize = cfg.PageSize
		pCfg.Priority = cfg.Priority
		if cfg.Resilience {
			pCfg.Retry = resilience.Policy{MaxAttempts: 4, Seed: cfg.Seed}
			pCfg.Breakers = tb.Breakers
		}
		p, err = portal.New(pCfg)
		if err != nil {
			return nil, err
		}
	} else {
		pCfg := portal.Config{
			Clusters: entries,
			ConeServices: []string{
				"http://" + HostNED + "/cone",
				"http://" + HostMAST + "/cone",
			},
			SIAServices: []string{
				"http://" + HostMAST + "/sia",
				"http://" + HostHEASARC + "/sia",
			},
			CutoutService:      "http://" + HostMAST + "/siacut",
			ComputeService:     "http://" + HostCompute,
			HTTPClient:         tb.Client,
			CacheImageSearch:   cfg.CacheImageSearch,
			MaxParallelQueries: cfg.MaxParallelQueries,
			PageSize:           cfg.PageSize,
			Priority:           cfg.Priority,
		}
		if cfg.Resilience {
			pCfg.Retry = resilience.Policy{MaxAttempts: 4, Seed: cfg.Seed}
			pCfg.Breakers = tb.Breakers
		}
		var err error
		p, err = portal.New(pCfg)
		if err != nil {
			return nil, err
		}
	}
	tb.Portal = p

	return tb, nil
}

// Cluster returns a generated cluster by name.
func (tb *Testbed) Cluster(name string) (*skysim.Cluster, error) {
	for _, c := range tb.Clusters {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, errors.New("core: unknown cluster " + name)
}
