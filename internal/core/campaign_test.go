package core

import (
	"strings"
	"testing"

	"repro/internal/gridftp"
	"repro/internal/rls"
	"repro/internal/skysim"
	"repro/internal/wcs"
)

func TestRunClusterAccounting(t *testing.T) {
	tb := smallTestbed(t, 25, nil)
	run, err := RunCluster(tb, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	if run.Galaxies != 25 {
		t.Errorf("galaxies = %d", run.Galaxies)
	}
	if run.ComputeJobs != 26 { // 25 galMorph + 1 concat
		t.Errorf("jobs = %d", run.ComputeJobs)
	}
	if run.ImagesFetched != 25 {
		t.Errorf("images fetched = %d", run.ImagesFetched)
	}
	if run.FilesStaged == 0 || run.BytesStaged == 0 {
		t.Errorf("staging: %d files %d bytes", run.FilesStaged, run.BytesStaged)
	}
	if run.Makespan <= 0 {
		t.Error("no makespan")
	}
	if run.Table.ColumnIndex("asymmetry") < 0 {
		t.Error("science table incomplete")
	}
}

func TestSection5Campaign(t *testing.T) {
	// A scaled version of the paper's 8-cluster campaign: three clusters
	// whose sizes preserve the 37..561 spread shape (scaled by ~1/8 to keep
	// the test fast); the full-size campaign runs in examples/eight-clusters
	// and cmd/nvo-demo.
	specs := []skysim.Spec{
		{Name: "CL0024", Center: wcs.New(15, -30), Redshift: 0.02, NumGalaxies: 5, Seed: 1000},
		{Name: "A2256", Center: wcs.New(95, -6), Redshift: 0.05, NumGalaxies: 14, Seed: 1001},
		{Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.08, NumGalaxies: 70, Seed: 1002},
	}
	tb, err := NewTestbed(Config{ClusterSpecs: specs, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunCampaign(tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Clusters) != 3 {
		t.Fatalf("clusters = %d", len(report.Clusters))
	}
	wantGalaxies := 5 + 14 + 70
	if report.TotalGalaxies != wantGalaxies {
		t.Errorf("galaxies = %d, want %d", report.TotalGalaxies, wantGalaxies)
	}
	// jobs = galaxies + one concat per cluster (§5: 1152 jobs for 1089+
	// galaxies across 8 clusters — jobs modestly exceed galaxy count).
	if report.TotalJobs != wantGalaxies+3 {
		t.Errorf("jobs = %d, want %d", report.TotalJobs, wantGalaxies+3)
	}
	if report.TotalImages != wantGalaxies {
		t.Errorf("images = %d", report.TotalImages)
	}
	// Staged files exceed image count (stage-in + inter-site moves +
	// delivery), mirroring the paper's 2295 transfers > 1525 images.
	if report.TotalTransfers <= report.TotalImages {
		t.Errorf("transfers (%d) should exceed images (%d)",
			report.TotalTransfers, report.TotalImages)
	}
	if len(report.Pools) != 3 {
		t.Errorf("pools = %v", report.Pools)
	}

	text := report.Format()
	for _, want := range []string{"COMA", "Totals:", "Paper §5"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestCampaignFailsOnBrokenCluster(t *testing.T) {
	tb := smallTestbed(t, 5, func(c *Config) { c.StrictFaults = true })
	// Sabotage: corrupt one image in the compute cache so the strict-fault
	// path fails the cluster.
	cat, err := tb.Portal.BuildCatalog("COMA")
	if err != nil {
		t.Fatal(err)
	}
	id := cat.Cell(0, "id")
	_ = tb.FTP.Store("isi").Put(id+".fit", []byte("corrupted corrupted corrupted"))
	if err := tb.RLS.Register(id+".fit", rlsPFN("isi", id+".fit")); err != nil {
		t.Fatal(err)
	}
	if _, err := RunCampaign(tb); err == nil {
		t.Error("campaign must surface cluster failure")
	}
}

// rlsPFN is a test helper building a replica record.
func rlsPFN(site, lfn string) rls.PFN {
	return rls.PFN{Site: site, URL: gridftp.URL(site, lfn)}
}

func TestParallelCampaignMatchesSequential(t *testing.T) {
	specs := []skysim.Spec{
		{Name: "C1", Center: wcs.New(15, -30), Redshift: 0.02, NumGalaxies: 12, Seed: 1000},
		{Name: "C2", Center: wcs.New(95, -6), Redshift: 0.05, NumGalaxies: 18, Seed: 1001},
		{Name: "C3", Center: wcs.New(195, 28), Redshift: 0.08, NumGalaxies: 25, Seed: 1002},
	}
	newTB := func() *Testbed {
		tb, err := NewTestbed(Config{ClusterSpecs: specs, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}

	seq, err := RunCampaign(newTB())
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCampaignParallel(newTB(), 3)
	if err != nil {
		t.Fatal(err)
	}

	if seq.TotalJobs != par.TotalJobs || seq.TotalBytes != par.TotalBytes ||
		seq.TotalTransfers != par.TotalTransfers {
		t.Errorf("totals differ:\nseq %+v\npar %+v", seq, par)
	}
	for i := range seq.Clusters {
		s, p := seq.Clusters[i], par.Clusters[i]
		if s.Cluster != p.Cluster || s.Makespan != p.Makespan ||
			s.BytesStaged != p.BytesStaged || s.InvalidRows != p.InvalidRows {
			t.Errorf("cluster %s accounting differs:\nseq %+v\npar %+v", s.Cluster, s, p)
		}
		// Science tables bit-identical.
		if s.Table.NumRows() != p.Table.NumRows() {
			t.Fatalf("%s: row counts differ", s.Cluster)
		}
		for r := range s.Table.Rows {
			for c := range s.Table.Rows[r] {
				if s.Table.Rows[r][c] != p.Table.Rows[r][c] {
					t.Fatalf("%s cell (%d,%d): %q vs %q", s.Cluster, r, c,
						s.Table.Rows[r][c], p.Table.Rows[r][c])
				}
			}
		}
	}
	// workers<=1 falls back to the sequential driver.
	if _, err := RunCampaignParallel(newTB(), 1); err != nil {
		t.Fatal(err)
	}
}
