package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/votable"
	"repro/internal/wcs"
)

// EarlyTypeAsymmetryMax is the asymmetry threshold separating early types
// (E/S0, symmetric) from late types (spirals/irregulars) in the computed
// parameters. Conselice 2003 places the boundary near A ≈ 0.1; our
// noise-corrected estimator reads systematically low (measured E/S0 stay
// below ~0.03, spirals average ~0.11), so the discriminating threshold
// sits between the two populations.
const EarlyTypeAsymmetryMax = 0.05

// RadialBin is one bin of the morphology–radius analysis behind Figure 7.
type RadialBin struct {
	MidRadiusDeg      float64
	N                 int
	MeanAsymmetry     float64
	MeanConcentration float64
	// EarlyFraction is the fraction of galaxies classified E/S0 by their
	// measured asymmetry.
	EarlyFraction float64
}

// Errors returned by the analysis helpers.
var (
	ErrMissingColumns = errors.New("core: table lacks required columns")
	ErrNoValidRows    = errors.New("core: no valid measured galaxies")
)

// galaxyPoint is one valid measured galaxy.
type galaxyPoint struct {
	pos    wcs.SkyCoord
	radius float64
	asym   float64
	conc   float64
}

// extractPoints pulls (radius, asymmetry, concentration) for every valid row.
func extractPoints(t *votable.Table, center wcs.SkyCoord) ([]galaxyPoint, error) {
	for _, col := range []string{"ra", "dec", "asymmetry", "concentration", "valid"} {
		if t.ColumnIndex(col) < 0 {
			return nil, fmt.Errorf("%w: %q", ErrMissingColumns, col)
		}
	}
	var pts []galaxyPoint
	for i := 0; i < t.NumRows(); i++ {
		if v, ok := t.Bool(i, "valid"); !ok || !v {
			continue
		}
		ra, ok1 := t.Float(i, "ra")
		dec, ok2 := t.Float(i, "dec")
		asym, ok3 := t.Float(i, "asymmetry")
		conc, ok4 := t.Float(i, "concentration")
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		pos := wcs.New(ra, dec)
		pts = append(pts, galaxyPoint{
			pos:    pos,
			radius: center.Separation(pos),
			asym:   asym,
			conc:   conc,
		})
	}
	if len(pts) == 0 {
		return nil, ErrNoValidRows
	}
	return pts, nil
}

// DresslerBins bins the valid galaxies of a merged morphology table into
// nbins equal-count radial bins about the cluster center and returns the
// per-bin asymmetry, concentration and early-type fraction. Rising mean
// asymmetry (falling early-type fraction) with radius is the
// morphology–density relation the paper "rediscovers" in Figure 7.
func DresslerBins(t *votable.Table, center wcs.SkyCoord, nbins int) ([]RadialBin, error) {
	if nbins <= 0 {
		return nil, errors.New("core: nbins must be positive")
	}
	pts, err := extractPoints(t, center)
	if err != nil {
		return nil, err
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].radius < pts[j].radius })

	if nbins > len(pts) {
		nbins = len(pts)
	}
	bins := make([]RadialBin, 0, nbins)
	per := len(pts) / nbins
	for b := 0; b < nbins; b++ {
		lo := b * per
		hi := lo + per
		if b == nbins-1 {
			hi = len(pts)
		}
		chunk := pts[lo:hi]
		var bin RadialBin
		bin.N = len(chunk)
		early := 0
		var sumR, sumA, sumC float64
		for _, p := range chunk {
			sumR += p.radius
			sumA += p.asym
			sumC += p.conc
			if p.asym < EarlyTypeAsymmetryMax {
				early++
			}
		}
		n := float64(len(chunk))
		bin.MidRadiusDeg = sumR / n
		bin.MeanAsymmetry = sumA / n
		bin.MeanConcentration = sumC / n
		bin.EarlyFraction = float64(early) / n
		bins = append(bins, bin)
	}
	return bins, nil
}

// AsymmetryRadiusCorrelation returns the Spearman rank correlation between
// measured asymmetry and cluster-centric radius over the valid galaxies —
// the single-number summary of Figure 7 (positive: spirals live outside).
func AsymmetryRadiusCorrelation(t *votable.Table, center wcs.SkyCoord) (rho float64, n int, err error) {
	pts, err := extractPoints(t, center)
	if err != nil {
		return 0, 0, err
	}
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.radius
		ys[i] = p.asym
	}
	return Spearman(xs, ys), len(pts), nil
}

// SpectralMorphologicalCorrelation correlates the catalog's spectral
// star-formation indicator (the ew_halpha column the Cone Search services
// deliver) with the Grid-computed asymmetry over the valid galaxies — the
// §2 science model's cross-check that "star formation indicators, both
// spectral and morphological" trace the same physics (expected strongly
// positive).
func SpectralMorphologicalCorrelation(t *votable.Table) (rho float64, n int, err error) {
	for _, col := range []string{"ew_halpha", "asymmetry", "valid"} {
		if t.ColumnIndex(col) < 0 {
			return 0, 0, fmt.Errorf("%w: %q", ErrMissingColumns, col)
		}
	}
	var ew, asym []float64
	for i := 0; i < t.NumRows(); i++ {
		if v, ok := t.Bool(i, "valid"); !ok || !v {
			continue
		}
		e, ok1 := t.Float(i, "ew_halpha")
		a, ok2 := t.Float(i, "asymmetry")
		if !ok1 || !ok2 {
			continue
		}
		ew = append(ew, e)
		asym = append(asym, a)
	}
	if len(ew) == 0 {
		return 0, 0, ErrNoValidRows
	}
	return Spearman(ew, asym), len(ew), nil
}

// Spearman computes the Spearman rank-correlation coefficient of two equal
// length samples (ties receive mean ranks). Returns 0 for degenerate input.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx := ranks(x)
	ry := ranks(y)
	return pearson(rx, ry)
}

// ranks assigns mean ranks to values.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && v[idx[j]] == v[idx[i]] {
			j++
		}
		mean := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			r[idx[k]] = mean
		}
		i = j
	}
	return r
}

// pearson computes the Pearson correlation coefficient.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx := sx / n
	my := sy / n
	var cov, vx, vy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
