package core

import (
	"errors"
	"sort"

	"repro/internal/fits"
	"repro/internal/votable"
	"repro/internal/wcs"
)

// This file completes §2's science model — "as a function of cluster
// radius, local density, and x-ray surface brightness": the third axis
// samples the cluster's X-ray map (the hot intracluster gas that marks the
// dynamical center) at each galaxy's position.

// XRayBin is one bin of the morphology–X-ray-brightness analysis.
type XRayBin struct {
	MeanBrightness float64 // X-ray counts at the member positions
	N              int
	MeanAsymmetry  float64
	EarlyFraction  float64
}

// ErrNoWCS reports an X-ray image without a usable projection.
var ErrNoWCS = errors.New("core: X-ray image carries no WCS")

// XRayBrightnessAt samples the X-ray image at each valid galaxy's position.
// Galaxies projecting outside the image read 0 (no detected emission).
func XRayBrightnessAt(xray *fits.Image, t *votable.Table, center wcs.SkyCoord) ([]float64, []galaxyPoint, error) {
	proj, ok := xray.WCS()
	if !ok {
		return nil, nil, ErrNoWCS
	}
	pts, err := extractPoints(t, center)
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, len(pts))
	for i, p := range pts {
		px, py, front := proj.SkyToPixel(p.pos)
		if !front {
			continue
		}
		out[i] = xray.At(int(px-1), int(py-1)) // WCS pixels are 1-based
	}
	return out, pts, nil
}

// DresslerXRayBins bins valid galaxies by the X-ray surface brightness at
// their positions (equal-count, ascending) and reports per-bin asymmetry
// and early-type fraction. Because the hot gas traces the cluster core, the
// early-type fraction rises toward high brightness.
func DresslerXRayBins(xray *fits.Image, t *votable.Table, center wcs.SkyCoord, nbins int) ([]XRayBin, error) {
	if nbins <= 0 {
		return nil, errors.New("core: nbins must be positive")
	}
	bright, pts, err := XRayBrightnessAt(xray, t, center)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return bright[idx[a]] < bright[idx[b]] })

	if nbins > len(pts) {
		nbins = len(pts)
	}
	per := len(pts) / nbins
	bins := make([]XRayBin, 0, nbins)
	for b := 0; b < nbins; b++ {
		lo := b * per
		hi := lo + per
		if b == nbins-1 {
			hi = len(pts)
		}
		var bin XRayBin
		early := 0
		var sumB, sumA float64
		for _, i := range idx[lo:hi] {
			sumB += bright[i]
			sumA += pts[i].asym
			if pts[i].asym < EarlyTypeAsymmetryMax {
				early++
			}
		}
		n := float64(hi - lo)
		bin.N = hi - lo
		bin.MeanBrightness = sumB / n
		bin.MeanAsymmetry = sumA / n
		bin.EarlyFraction = float64(early) / n
		bins = append(bins, bin)
	}
	return bins, nil
}

// AsymmetryXRayCorrelation returns the Spearman correlation between the
// X-ray surface brightness at the galaxy positions and their measured
// asymmetry (negative: bright X-ray cores host symmetric early types).
func AsymmetryXRayCorrelation(xray *fits.Image, t *votable.Table, center wcs.SkyCoord) (rho float64, n int, err error) {
	bright, pts, err := XRayBrightnessAt(xray, t, center)
	if err != nil {
		return 0, 0, err
	}
	asym := make([]float64, len(pts))
	for i, p := range pts {
		asym[i] = p.asym
	}
	return Spearman(bright, asym), len(pts), nil
}
