package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/portal"
	"repro/internal/votable"
)

// ClusterRun is the outcome of analyzing one cluster, in the quantities the
// paper's §5 reports for its campaign.
type ClusterRun struct {
	Cluster       string
	Galaxies      int
	ComputeJobs   int
	PrunedJobs    int
	TransferNodes int
	FilesStaged   int
	BytesStaged   int64
	ImagesFetched int
	ImagesCached  int
	InvalidRows   int
	Makespan      time.Duration
	// AsymmetryRadiusRho is the Figure 7 correlation for this cluster.
	AsymmetryRadiusRho float64
	// Table is the merged catalog with morphology columns.
	Table *votable.Table
	// Retries counts DAG nodes the compute service resubmitted; Failovers
	// counts transfers rerouted to an alternate RLS replica. Both are zero
	// on a fault-free run.
	Retries   int
	Failovers int
	// Degraded lists the archive services the portal proceeded without.
	Degraded []portal.Degradation
}

// CampaignReport aggregates a multi-cluster run (§5: "a total of 1152
// compute jobs ... 1525 images, corresponding to 30MB of data ... the
// transfer of 2295 files").
type CampaignReport struct {
	Clusters []ClusterRun

	TotalGalaxies  int
	TotalJobs      int
	TotalImages    int
	TotalBytes     int64
	TotalTransfers int
	Pools          []string
}

// RunCampaign analyzes every cluster the portal knows, one after another as
// the paper did, and aggregates the campaign statistics.
func RunCampaign(tb *Testbed) (*CampaignReport, error) {
	report := &CampaignReport{}
	for _, p := range tb.Compute.Pools() {
		report.Pools = append(report.Pools, p)
	}
	for _, entry := range tb.Portal.Clusters() {
		run, err := RunCluster(tb, entry.Name)
		if err != nil {
			return nil, fmt.Errorf("core: cluster %s: %w", entry.Name, err)
		}
		report.Clusters = append(report.Clusters, *run)
		report.TotalGalaxies += run.Galaxies
		report.TotalJobs += run.ComputeJobs
		report.TotalImages += run.ImagesFetched + run.ImagesCached
		report.TotalBytes += run.BytesStaged
		report.TotalTransfers += run.FilesStaged
	}
	return report, nil
}

// RunCampaignParallel is RunCampaign with the clusters analyzed
// concurrently by a bounded worker pool. Per-cluster computations are
// seeded from the cluster name, so the results are identical to the
// sequential driver's (asserted by TestParallelCampaignMatchesSequential);
// only wall-clock time changes. The paper analyzed its clusters
// "separately" — this is the obvious scale-out.
func RunCampaignParallel(tb *Testbed, workers int) (*CampaignReport, error) {
	if workers <= 1 {
		return RunCampaign(tb)
	}
	entries := tb.Portal.Clusters()
	runs := make([]*ClusterRun, len(entries))
	errs := make([]error, len(entries))

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, entry := range entries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, name string) {
			defer wg.Done()
			defer func() { <-sem }()
			runs[i], errs[i] = RunCluster(tb, name)
		}(i, entry.Name)
	}
	wg.Wait()

	report := &CampaignReport{}
	report.Pools = append(report.Pools, tb.Compute.Pools()...)
	for i, run := range runs {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: cluster %s: %w", entries[i].Name, errs[i])
		}
		report.Clusters = append(report.Clusters, *run)
		report.TotalGalaxies += run.Galaxies
		report.TotalJobs += run.ComputeJobs
		report.TotalImages += run.ImagesFetched + run.ImagesCached
		report.TotalBytes += run.BytesStaged
		report.TotalTransfers += run.FilesStaged
	}
	return report, nil
}

// RunCluster performs the full analysis of one cluster through the portal's
// catalog construction and the compute service, returning both the science
// table and the Grid accounting.
func RunCluster(tb *Testbed, name string) (*ClusterRun, error) {
	_, imgDegraded, err := tb.Portal.FindImagesReport(name)
	if err != nil {
		return nil, err
	}
	cat, catDegraded, err := tb.Portal.BuildCatalogReport(name)
	if err != nil {
		return nil, err
	}
	lfn, stats, err := tb.Compute.Compute(cat, name)
	if err != nil {
		return nil, err
	}
	morph, err := tb.Compute.ResultTable(lfn)
	if err != nil {
		return nil, err
	}
	if err := votable.MergeColumns(cat, morph, "id", "id",
		"surface_brightness", "concentration", "asymmetry", "valid"); err != nil {
		return nil, err
	}

	run := &ClusterRun{
		Cluster:       name,
		Galaxies:      stats.Galaxies,
		ComputeJobs:   stats.ComputeJobs,
		PrunedJobs:    stats.PrunedJobs,
		TransferNodes: stats.TransferNodes,
		FilesStaged:   stats.FilesStaged,
		BytesStaged:   stats.BytesStaged,
		ImagesFetched: stats.ImagesFetched,
		ImagesCached:  stats.ImagesCached,
		InvalidRows:   stats.InvalidRows,
		Makespan:      stats.Makespan,
		Retries:       stats.Retries,
		Failovers:     stats.Failovers,
		Table:         cat,
	}
	run.Degraded = append(run.Degraded, imgDegraded...)
	run.Degraded = append(run.Degraded, catDegraded...)
	if cl, err := tb.Cluster(name); err == nil {
		if rho, _, err := AsymmetryRadiusCorrelation(cat, cl.Center); err == nil {
			run.AsymmetryRadiusRho = rho
		}
	}
	return run, nil
}

// Format renders the report as the §5-style summary table.
func (r *CampaignReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign over %d clusters on pools %s\n\n",
		len(r.Clusters), strings.Join(r.Pools, ", "))
	fmt.Fprintf(&b, "%-10s %9s %6s %8s %10s %10s %9s %8s\n",
		"cluster", "galaxies", "jobs", "images", "staged", "bytes", "invalid", "rho")
	for _, c := range r.Clusters {
		fmt.Fprintf(&b, "%-10s %9d %6d %8d %10d %10d %9d %8.3f\n",
			c.Cluster, c.Galaxies, c.ComputeJobs, c.ImagesFetched+c.ImagesCached,
			c.FilesStaged, c.BytesStaged, c.InvalidRows, c.AsymmetryRadiusRho)
	}
	fmt.Fprintf(&b, "\nTotals: %d galaxies, %d compute jobs, %d images, %.1f MB staged, %d file transfers\n",
		r.TotalGalaxies, r.TotalJobs, r.TotalImages, float64(r.TotalBytes)/1e6, r.TotalTransfers)
	fmt.Fprintf(&b, "Paper §5: 1152 compute jobs, 1525 images, 30 MB, 2295 file transfers over 3 pools\n")
	return b.String()
}
