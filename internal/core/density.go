package core

import (
	"errors"
	"math"
	"sort"

	"repro/internal/votable"
	"repro/internal/wcs"
)

// This file implements the morphology–density axis of the paper's science
// model ("Our science model examines the distribution of star formation
// indicators ... as a function of cluster radius, local density, and x-ray
// surface brightness", §2): Dressler 1980's original relation is against
// the local projected galaxy density, estimated with his Σ-estimator — the
// surface density implied by the distance to the k-th nearest neighbor.

// densityNeighbors is Dressler's k (he used the 10 nearest; k=5 is the
// small-sample variant appropriate for our cluster sizes).
const densityNeighbors = 5

// DensityBin is one bin of the morphology–density analysis.
type DensityBin struct {
	// MeanDensity is the mean Σ5 of the bin, galaxies per square degree.
	MeanDensity   float64
	N             int
	MeanAsymmetry float64
	EarlyFraction float64
}

// ErrTooFewGalaxies reports a sample too small for the density estimator.
var ErrTooFewGalaxies = errors.New("core: too few valid galaxies for local density")

// localDensities returns Σk for each point: k / (π · r_k²), with r_k the
// angular distance to the k-th nearest other valid galaxy.
func localDensities(pts []galaxyPoint, k int) ([]float64, error) {
	if len(pts) < k+1 {
		return nil, ErrTooFewGalaxies
	}
	out := make([]float64, len(pts))
	seps := make([]float64, 0, len(pts)-1)
	for i := range pts {
		seps = seps[:0]
		for j := range pts {
			if i == j {
				continue
			}
			seps = append(seps, pts[i].pos.Separation(pts[j].pos))
		}
		sort.Float64s(seps)
		rk := seps[k-1]
		if rk <= 0 {
			rk = 1e-6 // coincident positions: cap the density
		}
		out[i] = float64(k) / (math.Pi * rk * rk)
	}
	return out, nil
}

// DresslerDensityBins bins the valid galaxies by local projected density
// (equal-count bins, ascending density) and reports per-bin asymmetry and
// early-type fraction. Dressler's relation appears as the early-type
// fraction rising — and mean asymmetry falling — toward high density.
func DresslerDensityBins(t *votable.Table, center wcs.SkyCoord, nbins int) ([]DensityBin, error) {
	if nbins <= 0 {
		return nil, errors.New("core: nbins must be positive")
	}
	pts, err := extractPoints(t, center)
	if err != nil {
		return nil, err
	}
	dens, err := localDensities(pts, densityNeighbors)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dens[idx[a]] < dens[idx[b]] })

	if nbins > len(pts) {
		nbins = len(pts)
	}
	per := len(pts) / nbins
	bins := make([]DensityBin, 0, nbins)
	for b := 0; b < nbins; b++ {
		lo := b * per
		hi := lo + per
		if b == nbins-1 {
			hi = len(pts)
		}
		var bin DensityBin
		early := 0
		var sumD, sumA float64
		for _, i := range idx[lo:hi] {
			sumD += dens[i]
			sumA += pts[i].asym
			if pts[i].asym < EarlyTypeAsymmetryMax {
				early++
			}
		}
		n := float64(hi - lo)
		bin.N = hi - lo
		bin.MeanDensity = sumD / n
		bin.MeanAsymmetry = sumA / n
		bin.EarlyFraction = float64(early) / n
		bins = append(bins, bin)
	}
	return bins, nil
}

// AsymmetryDensityCorrelation returns the Spearman correlation between
// local density and measured asymmetry — Dressler's relation proper, which
// comes out negative (dense regions host symmetric early types).
func AsymmetryDensityCorrelation(t *votable.Table, center wcs.SkyCoord) (rho float64, n int, err error) {
	pts, err := extractPoints(t, center)
	if err != nil {
		return 0, 0, err
	}
	dens, err := localDensities(pts, densityNeighbors)
	if err != nil {
		return 0, 0, err
	}
	asym := make([]float64, len(pts))
	for i, p := range pts {
		asym[i] = p.asym
	}
	return Spearman(dens, asym), len(pts), nil
}
