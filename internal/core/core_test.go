package core

import (
	"bytes"
	"math"
	"net/http/httptest"
	"testing"

	"repro/internal/fits"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/services"
	"repro/internal/skysim"
	"repro/internal/tableops"
	"repro/internal/votable"
	"repro/internal/wcs"
)

func smallTestbed(t testing.TB, n int, mut func(*Config)) *Testbed {
	t.Helper()
	cfg := Config{
		ClusterSpecs: []skysim.Spec{{
			Name: "COMA", Center: wcs.New(195, 28), Redshift: 0.023,
			NumGalaxies: n, Seed: 31,
		}},
		Seed: 9,
	}
	if mut != nil {
		mut(&cfg)
	}
	tb, err := NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestTestbedWiring(t *testing.T) {
	tb := smallTestbed(t, 10, nil)
	if len(tb.Clusters) != 1 || tb.MAST == nil || tb.NED == nil || tb.Portal == nil {
		t.Fatal("testbed incomplete")
	}
	if _, err := tb.Cluster("COMA"); err != nil {
		t.Error(err)
	}
	if _, err := tb.Cluster("GHOST"); err == nil {
		t.Error("unknown cluster must fail")
	}
	// Virtual-host routing works for every service.
	for _, u := range []string{
		"http://" + HostMAST + "/cone?RA=195&DEC=28&SR=0.5",
		"http://" + HostNED + "/cone?RA=195&DEC=28&SR=0.5",
		"http://" + HostHEASARC + "/sia?POS=195,28&SIZE=1",
		"http://" + HostRLS + "/lfns",
	} {
		resp, err := tb.Client.Get(u)
		if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", u, resp.StatusCode)
		}
	}
	// Unknown host fails loudly.
	if _, err := tb.Client.Get("http://nowhere.nvo/x"); err == nil {
		t.Error("unknown virtual host must fail")
	}
}

func TestDefaultTestbed(t *testing.T) {
	tb, err := NewTestbed(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Clusters) != 2 {
		t.Errorf("default clusters = %d", len(tb.Clusters))
	}
}

func TestFigure5PortalFlow(t *testing.T) {
	// The complete Figure 5 operation through the in-process Grid.
	tb := smallTestbed(t, 15, nil)
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 15 {
		t.Fatalf("rows = %d", res.Table.NumRows())
	}
	if res.Table.ColumnIndex("asymmetry") < 0 || res.Table.ColumnIndex("valid") < 0 {
		t.Error("morphology columns not merged")
	}
	if len(res.Images) != 4 { // optical+xray from MAST and HEASARC
		t.Errorf("images = %d, want 4", len(res.Images))
	}
	// The run must have registered data products.
	if !tb.RLS.Exists("COMA.vot") {
		t.Error("output not in RLS")
	}
	if tb.FTP.Stats().Transfers == 0 {
		t.Error("no grid transfers recorded")
	}
}

func TestFigure2Pipeline(t *testing.T) {
	// The Chimera->Pegasus->DAGMan pipeline via the compute service,
	// checking the reduction on a repeat request (Figure 2's virtual-data
	// behaviour end to end).
	tb := smallTestbed(t, 8, nil)
	if _, err := tb.Portal.Analyze("COMA"); err != nil {
		t.Fatal(err)
	}
	before := tb.FTP.Stats().Transfers
	// Second run: fully served from the RLS (output exists).
	if _, err := tb.Portal.Analyze("COMA"); err != nil {
		t.Fatal(err)
	}
	if after := tb.FTP.Stats().Transfers; after != before {
		t.Errorf("repeat analysis caused %d transfers", after-before)
	}
}

func TestDresslerRelation(t *testing.T) {
	// Figure 7's content: measured asymmetry rises with cluster radius, so
	// the Spearman correlation is positive and the early-type fraction
	// falls from the innermost to the outermost bin.
	tb := smallTestbed(t, 250, nil)
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	cl := tb.Clusters[0]

	rho, n, err := AsymmetryRadiusCorrelation(res.Table, cl.Center)
	if err != nil {
		t.Fatal(err)
	}
	if n < 180 {
		t.Fatalf("only %d valid galaxies", n)
	}
	if rho <= 0.1 {
		t.Errorf("asymmetry-radius correlation = %.3f, want clearly positive", rho)
	}

	bins, err := DresslerBins(res.Table, cl.Center, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].EarlyFraction <= bins[3].EarlyFraction {
		t.Errorf("early fraction must fall with radius: inner %.2f outer %.2f",
			bins[0].EarlyFraction, bins[3].EarlyFraction)
	}
	if bins[0].MeanAsymmetry >= bins[3].MeanAsymmetry {
		t.Errorf("mean asymmetry must rise with radius: inner %.3f outer %.3f",
			bins[0].MeanAsymmetry, bins[3].MeanAsymmetry)
	}
	for i := 1; i < len(bins); i++ {
		if bins[i].MidRadiusDeg <= bins[i-1].MidRadiusDeg {
			t.Error("bin radii must increase")
		}
	}
}

func TestDresslerBinsErrors(t *testing.T) {
	tab := votable.NewTable("t", votable.Field{Name: "x", Datatype: votable.TypeChar})
	if _, err := DresslerBins(tab, wcs.New(0, 0), 3); err == nil {
		t.Error("missing columns must fail")
	}
	good := votable.NewTable("t",
		votable.Field{Name: "ra", Datatype: votable.TypeDouble},
		votable.Field{Name: "dec", Datatype: votable.TypeDouble},
		votable.Field{Name: "asymmetry", Datatype: votable.TypeDouble},
		votable.Field{Name: "concentration", Datatype: votable.TypeDouble},
		votable.Field{Name: "valid", Datatype: votable.TypeBoolean},
	)
	if _, err := DresslerBins(good, wcs.New(0, 0), 3); err == nil {
		t.Error("empty table must fail")
	}
	_ = good.AppendRow("1", "1", "0.1", "3", "F")
	if _, err := DresslerBins(good, wcs.New(0, 0), 3); err == nil {
		t.Error("all-invalid table must fail")
	}
	_ = good.AppendRow("1", "1", "0.1", "3", "T")
	if _, err := DresslerBins(good, wcs.New(0, 0), 0); err == nil {
		t.Error("zero bins must fail")
	}
	bins, err := DresslerBins(good, wcs.New(0, 0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 1 {
		t.Errorf("bins clamp to row count: %d", len(bins))
	}
}

func TestSpearman(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if rho := Spearman(x, x); math.Abs(rho-1) > 1e-12 {
		t.Errorf("identity rho = %v", rho)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if rho := Spearman(x, rev); math.Abs(rho+1) > 1e-12 {
		t.Errorf("reverse rho = %v", rho)
	}
	// Monotone nonlinear relation: Spearman is exactly 1.
	y := []float64{1, 8, 27, 64, 125}
	if rho := Spearman(x, y); math.Abs(rho-1) > 1e-12 {
		t.Errorf("monotone rho = %v", rho)
	}
	// Degenerate inputs.
	if Spearman(x, x[:3]) != 0 {
		t.Error("length mismatch must be 0")
	}
	if Spearman([]float64{1}, []float64{2}) != 0 {
		t.Error("singleton must be 0")
	}
	if Spearman([]float64{2, 2, 2}, x[:3]) != 0 {
		t.Error("constant input must be 0")
	}
	// Ties get mean ranks; a tied-but-correlated sample stays positive.
	if rho := Spearman([]float64{1, 1, 2, 2}, []float64{1, 2, 3, 4}); rho <= 0 {
		t.Errorf("tied rho = %v", rho)
	}
}

func TestFaultInjectionThroughTestbed(t *testing.T) {
	tb := smallTestbed(t, 10, func(c *Config) { c.FailureRate = 0.15 })
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 10 {
		t.Errorf("rows = %d", res.Table.NumRows())
	}
}

func BenchmarkFigure5Analyze(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := smallTestbed(b, 20, nil)
		b.StartTimer()
		if _, err := tb.Portal.Analyze("COMA"); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRegistryDiscoveredPortal(t *testing.T) {
	// The §5 future-work registry: the portal discovers every service from
	// the resource registry and still completes the Figure 5 flow.
	tb := smallTestbed(t, 10, func(c *Config) { c.UseRegistryDiscovery = true })
	if tb.Registry.Len() == 0 {
		t.Fatal("registry empty")
	}
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 10 || res.Table.ColumnIndex("asymmetry") < 0 {
		t.Errorf("discovered portal analysis incomplete: %d rows", res.Table.NumRows())
	}
	// Discovery fails loudly when a required service type is missing.
	reg := registry.New()
	_ = reg.Register(registry.Entry{ID: "x", Type: registry.TypeConeSearch, BaseURL: "http://c"})
	srv := httptest.NewServer(registry.Handler(reg))
	defer srv.Close()
	_, err = portal.DiscoverConfig(&registry.Client{Base: srv.URL},
		[]portal.ClusterEntry{{Name: "X"}}, nil)
	if err == nil {
		t.Error("discovery without cutout/compute services must fail")
	}
}

func TestMyProxyGatedTestbed(t *testing.T) {
	tb := smallTestbed(t, 8, func(c *Config) { c.RequireProxy = true })
	// With the delegated credential in place the flow works.
	if _, err := tb.Portal.Analyze("COMA"); err != nil {
		t.Fatal(err)
	}
	// Destroy the delegation: new computations are refused.
	if err := tb.MyProxy.Destroy(MyProxyUser, MyProxyPass); err != nil {
		t.Fatal(err)
	}
	cat, err := tb.Portal.BuildCatalog("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tb.Compute.Compute(cat, "OTHER"); err == nil {
		t.Error("destroyed credential must refuse computation")
	}
}

func TestTableOpsServiceInTestbed(t *testing.T) {
	tb := smallTestbed(t, 12, nil)
	run, err := RunCluster(tb, "COMA")
	if err != nil {
		t.Fatal(err)
	}
	// Use the generic table service to filter the merged science table to
	// the asymmetric galaxies, over HTTP.
	c := &tableops.Client{Base: "http://" + HostTableOps, HTTP: tb.Client}
	asym, err := c.Filter(run.Table, "asymmetry", 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	if asym.NumRows() >= run.Table.NumRows() {
		t.Errorf("filter did not narrow: %d of %d", asym.NumRows(), run.Table.NumRows())
	}
	sorted, err := c.Sort(run.Table, "asymmetry")
	if err != nil {
		t.Fatal(err)
	}
	a0, _ := sorted.Float(0, "asymmetry")
	aN, _ := sorted.Float(sorted.NumRows()-1, "asymmetry")
	if a0 > aN {
		t.Errorf("sort order wrong: %v .. %v", a0, aN)
	}
}

func TestEndToEndDeterminism(t *testing.T) {
	// Two testbeds with identical configuration must produce bit-identical
	// science tables and campaign accounting — the property that makes
	// every number in EXPERIMENTS.md reproducible.
	runOnce := func() *ClusterRun {
		tb := smallTestbed(t, 30, nil)
		run, err := RunCluster(tb, "COMA")
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a := runOnce()
	b := runOnce()
	if a.ComputeJobs != b.ComputeJobs || a.FilesStaged != b.FilesStaged ||
		a.BytesStaged != b.BytesStaged || a.Makespan != b.Makespan ||
		a.InvalidRows != b.InvalidRows {
		t.Errorf("accounting differs:\n%+v\n%+v", a, b)
	}
	if a.Table.NumRows() != b.Table.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := range a.Table.Rows {
		for j := range a.Table.Rows[i] {
			if a.Table.Rows[i][j] != b.Table.Rows[i][j] {
				t.Fatalf("cell (%d,%d): %q vs %q", i, j,
					a.Table.Rows[i][j], b.Table.Rows[i][j])
			}
		}
	}
}

func TestDresslerDensityRelation(t *testing.T) {
	// The relation against Dressler's own axis: local projected density.
	// High-density galaxies must be more symmetric (negative correlation;
	// early-type fraction rising toward dense bins).
	tb := smallTestbed(t, 250, nil)
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	cl := tb.Clusters[0]

	rho, n, err := AsymmetryDensityCorrelation(res.Table, cl.Center)
	if err != nil {
		t.Fatal(err)
	}
	if n < 180 {
		t.Fatalf("valid galaxies = %d", n)
	}
	if rho >= -0.1 {
		t.Errorf("asymmetry-density correlation = %.3f, want clearly negative", rho)
	}

	bins, err := DresslerDensityBins(res.Table, cl.Center, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	for i := 1; i < len(bins); i++ {
		if bins[i].MeanDensity <= bins[i-1].MeanDensity {
			t.Error("bins must ascend in density")
		}
	}
	if bins[3].EarlyFraction <= bins[0].EarlyFraction {
		t.Errorf("early fraction must rise with density: sparse %.2f dense %.2f",
			bins[0].EarlyFraction, bins[3].EarlyFraction)
	}
}

func TestDensityAnalysisErrors(t *testing.T) {
	small := votable.NewTable("t",
		votable.Field{Name: "ra", Datatype: votable.TypeDouble},
		votable.Field{Name: "dec", Datatype: votable.TypeDouble},
		votable.Field{Name: "asymmetry", Datatype: votable.TypeDouble},
		votable.Field{Name: "concentration", Datatype: votable.TypeDouble},
		votable.Field{Name: "valid", Datatype: votable.TypeBoolean},
	)
	for i := 0; i < 4; i++ { // fewer than densityNeighbors+1
		_ = small.AppendRow(votable.FormatFloat(float64(i)), "0", "0.1", "3", "T")
	}
	if _, _, err := AsymmetryDensityCorrelation(small, wcs.New(0, 0)); err == nil {
		t.Error("too few galaxies must fail")
	}
	if _, err := DresslerDensityBins(small, wcs.New(0, 0), 2); err == nil {
		t.Error("too few galaxies must fail")
	}
	if _, err := DresslerDensityBins(small, wcs.New(0, 0), 0); err == nil {
		t.Error("zero bins must fail")
	}
}

func TestDresslerXRayRelation(t *testing.T) {
	// The third science-model axis: asymmetry vs X-ray surface brightness
	// at the galaxy positions must anticorrelate (bright gas = dense core
	// = early types).
	tb := smallTestbed(t, 250, nil)
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	cl := tb.Clusters[0]
	xrayBytes, err := tb.MAST.FieldFITS("COMA", services.BandXRay)
	if err != nil {
		t.Fatal(err)
	}
	xray, err := fits.Decode(bytes.NewReader(xrayBytes))
	if err != nil {
		t.Fatal(err)
	}

	rho, n, err := AsymmetryXRayCorrelation(xray, res.Table, cl.Center)
	if err != nil {
		t.Fatal(err)
	}
	if n < 180 {
		t.Fatalf("valid galaxies = %d", n)
	}
	if rho >= -0.1 {
		t.Errorf("asymmetry-xray correlation = %.3f, want clearly negative", rho)
	}

	bins, err := DresslerXRayBins(xray, res.Table, cl.Center, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 4 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[3].EarlyFraction <= bins[0].EarlyFraction {
		t.Errorf("early fraction must rise with X-ray brightness: %.2f .. %.2f",
			bins[0].EarlyFraction, bins[3].EarlyFraction)
	}
	for i := 1; i < len(bins); i++ {
		if bins[i].MeanBrightness <= bins[i-1].MeanBrightness {
			t.Error("bins must ascend in brightness")
		}
	}

	// Missing WCS is an error.
	bare := fits.NewImage(16, 16, -32)
	if _, _, err := AsymmetryXRayCorrelation(bare, res.Table, cl.Center); err == nil {
		t.Error("image without WCS must fail")
	}
	if _, err := DresslerXRayBins(xray, res.Table, cl.Center, 0); err == nil {
		t.Error("zero bins must fail")
	}
}

func TestSpectralMorphologicalCorrelation(t *testing.T) {
	// The §2 cross-check: the catalog's spectral star-formation indicator
	// (Hα equivalent width from the cone-search services) must correlate
	// positively with the Grid-computed asymmetry.
	tb := smallTestbed(t, 250, nil)
	res, err := tb.Portal.Analyze("COMA")
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.ColumnIndex("ew_halpha") < 0 {
		t.Fatalf("catalog lacks ew_halpha; fields: %+v", res.Table.Fields)
	}
	rho, n, err := SpectralMorphologicalCorrelation(res.Table)
	if err != nil {
		t.Fatal(err)
	}
	if n < 80 {
		t.Fatalf("valid galaxies = %d", n)
	}
	if rho <= 0.3 {
		t.Errorf("spectral-morphological correlation = %.3f, want strongly positive", rho)
	}

	// Missing columns fail loudly.
	bare := votable.NewTable("b", votable.Field{Name: "x", Datatype: votable.TypeChar})
	if _, _, err := SpectralMorphologicalCorrelation(bare); err == nil {
		t.Error("missing columns must fail")
	}
}
