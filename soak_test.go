// The multi-tenant soak campaign: thousands of workflows across priority
// classes on one preemption-enabled fabric, with runtime quota/weight
// rebalancing mid-flight — checking that nothing is lost, fleet accounting
// stays consistent, the high-priority class's queue wait stays bounded,
// and (end to end through the compute service) every preempted-and-resumed
// workflow's science output stays byte-identical with zero journal bleed.
// Scale with SOAK_WORKFLOWS (make soak runs the full campaign race-enabled).
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/rls"
	"repro/internal/webservice"
)

// soakCount reads the campaign scale from SOAK_WORKFLOWS, defaulting to a
// CI-sized fleet. `make soak` overrides it into the thousands.
func soakCount(t testing.TB, def int) int {
	s := os.Getenv("SOAK_WORKFLOWS")
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 16 {
		t.Fatalf("SOAK_WORKFLOWS=%q: want an integer >= 16", s)
	}
	return n
}

// Priority classes of the synthetic fleet.
const (
	soakBatch       = 0
	soakInteractive = 2
	soakUrgent      = 5
)

// soakTenant deterministically assigns workflow i a tenant and priority
// class: a sprinkle of urgent work, a steady interactive stream, and a bulk
// batch population spread over four tenants.
func soakTenant(i int) (string, int) {
	switch {
	case i%16 == 0:
		return "urgent", soakUrgent
	case i%4 == 1:
		return "int-" + strconv.Itoa(i%2), soakInteractive
	default:
		return "batch-" + strconv.Itoa(i%4), soakBatch
	}
}

// soakSample is one workflow's admission measurement: wall-clock queue wait
// and grant distance (how many other grants happened between this
// workflow's admission and its own grant — a clock-free congestion metric).
type soakSample struct {
	priority int
	wait     time.Duration
	dist     int64
}

// runSoakFleet drives n synthetic checkpointable workflows through one
// shared fabric. Each workflow runs a handful of steps, polling its lease
// at every step boundary and answering a revocation with the
// checkpoint-preempt handshake (Preempted -> re-Wait -> continue). A third
// of the way in, one batch tenant's quota is tightened at runtime; two
// thirds in, an interactive tenant's weight is boosted — the rebalancing
// path under load. Client concurrency is bounded so arrivals stay
// open-loop rather than one giant thundering herd.
func runSoakFleet(t *testing.T, n int, preemption bool) (fabric.FleetSnapshot, []soakSample) {
	t.Helper()
	f, err := fabric.New(fabric.Config{
		Pools: []condor.Pool{
			{Name: "usc", Slots: 8}, {Name: "wisc", Slots: 16}, {Name: "fnal", Slots: 8},
		},
		MaxRunningWorkflows: 8,
		Preemption:          preemption,
	})
	if err != nil {
		t.Fatal(err)
	}

	var grants, completions int64
	samples := make([]soakSample, n)
	inflight := make(chan struct{}, 64)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			inflight <- struct{}{}
			defer func() { <-inflight }()

			tenant, prio := soakTenant(i)
			start := time.Now()
			g0 := atomic.LoadInt64(&grants)
			tkt, err := f.Admit(tenant, prio)
			if err != nil {
				t.Errorf("workflow %d (%s): shed with no queue bounds configured: %v", i, tenant, err)
				return
			}
			lease, err := tkt.Wait(context.Background())
			if err != nil {
				t.Errorf("workflow %d (%s): wait: %v", i, tenant, err)
				return
			}
			g1 := atomic.AddInt64(&grants, 1)
			samples[i] = soakSample{priority: prio, wait: time.Since(start), dist: g1 - g0 - 1}
			lease.SetPreemptible(true)

			steps := 3 + i%5
			for s := 0; s < steps; s++ {
				if lease.IsRevoked() {
					// Checkpoint-stop at the step boundary and requeue;
					// completed steps are not redone after the regrant.
					tkt := lease.Preempted(time.Duration(s) * time.Second)
					if tkt == nil {
						t.Errorf("workflow %d: revoked lease already released", i)
						return
					}
					if lease, err = tkt.Wait(context.Background()); err != nil {
						t.Errorf("workflow %d: resume wait: %v", i, err)
						return
					}
					atomic.AddInt64(&grants, 1)
					lease.SetPreemptible(true)
				}
				time.Sleep(time.Duration(40+10*(i%5)) * time.Microsecond)
			}
			lease.Done(time.Duration(steps)*time.Second, false)

			// Runtime rebalancing while the fleet is busy: AddInt64 hands
			// each goroutine a unique count, so each trigger fires once.
			switch atomic.AddInt64(&completions, 1) {
			case int64(n / 3):
				f.SetQuota("batch-0", fabric.Quota{MaxRunningWorkflows: 2})
			case int64(2 * n / 3):
				f.SetWeight("int-0", 4)
				f.SetQuota("batch-1", fabric.Quota{MaxRunningWorkflows: 3, Weight: 2})
			}
		}(i)
	}
	wg.Wait()
	return f.Snapshot(), samples
}

// distPercentile returns the p-th percentile grant distance among samples
// of one priority class.
func distPercentile(samples []soakSample, priority int, p float64) int64 {
	var ds []int64
	for _, s := range samples {
		if s.priority == priority {
			ds = append(ds, s.dist)
		}
	}
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	idx := int(p * float64(len(ds)-1))
	return ds[idx]
}

// waitPercentile is distPercentile for the wall-clock queue wait.
func waitPercentile(samples []soakSample, priority int, p float64) time.Duration {
	var ws []time.Duration
	for _, s := range samples {
		if s.priority == priority {
			ws = append(ws, s.wait)
		}
	}
	if len(ws) == 0 {
		return 0
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	return ws[int(p*float64(len(ws)-1))]
}

// TestSoakFabricCampaign floods the fabric with SOAK_WORKFLOWS synthetic
// checkpointable workflows under preemption and mid-run rebalancing and
// checks the soak invariants: every workflow completes exactly once,
// fleet and per-tenant accounting agree, revocations and requeues balance,
// and the urgent class's queue congestion stays bounded while the batch
// population queues arbitrarily deep behind it.
func TestSoakFabricCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign skipped in -short mode")
	}
	n := soakCount(t, 600)
	snap, samples := runSoakFleet(t, n, true)

	// Nothing lost, nothing stuck, nothing shed, nothing failed.
	if snap.Completed != n || snap.Failed != 0 || snap.Shed != 0 {
		t.Errorf("fleet outcome: completed=%d failed=%d shed=%d, want %d/0/0",
			snap.Completed, snap.Failed, snap.Shed, n)
	}
	if snap.Running != 0 || snap.Queued != 0 {
		t.Errorf("fleet not drained: running=%d queued=%d", snap.Running, snap.Queued)
	}

	// Per-tenant counters must sum to the fleet totals — the accounting
	// cannot drift under preemption churn.
	var completed, admitted, preempted, requeued int
	for _, ts := range snap.Tenants {
		completed += ts.Completed
		admitted += ts.Admitted
		preempted += ts.Preempted
		requeued += ts.Requeued
	}
	if completed != snap.Completed || admitted != snap.Admitted ||
		preempted != snap.Preempted || requeued != snap.Requeued {
		t.Errorf("tenant counters do not sum to fleet: %+v", snap)
	}

	// Preemption must actually have fired, and every revocation is matched
	// by at most one requeue (a victim that finished its last step before
	// noticing calls Done instead).
	if snap.Preempted == 0 || snap.Requeued == 0 {
		t.Fatalf("soak saw no preemption (preempted=%d requeued=%d); the campaign tested nothing",
			snap.Preempted, snap.Requeued)
	}
	if snap.Requeued > snap.Preempted {
		t.Errorf("more requeues (%d) than revocations (%d)", snap.Requeued, snap.Preempted)
	}

	// Bounded urgent-class latency: with preemption on, an urgent arrival
	// is granted within a small constant number of grant events — fleet
	// slots plus the handful of urgent peers in flight — independent of how
	// deep the batch backlog queues.
	urgentP99 := distPercentile(samples, soakUrgent, 0.99)
	batchP99 := distPercentile(samples, soakBatch, 0.99)
	if bound := int64(48); urgentP99 > bound {
		t.Errorf("urgent p99 grant distance = %d, want <= %d", urgentP99, bound)
	}
	t.Logf("soak: %d workflows, %d preemptions, %d requeues; grant-distance p99 urgent=%d batch=%d",
		n, snap.Preempted, snap.Requeued, urgentP99, batchP99)
}

// soakServiceRounds scales the end-to-end slice of the soak with the fleet
// size: three tenants each run this many full compute workflows.
func soakServiceRounds(n int) int {
	r := n / 150
	if r < 2 {
		r = 2
	}
	if r > 8 {
		r = 8
	}
	return r
}

// purgeProducts unregisters every data product of one cluster's workflow
// (the result table, morphology files and staged cutouts all carry the
// cluster-name prefix) so the next round recomputes the science instead of
// serving the materialized output from the RLS.
func purgeProducts(t *testing.T, r *rls.RLS, cluster string) {
	t.Helper()
	for _, lfn := range r.LFNs() {
		if lfn != cluster+".vot" && !strings.HasPrefix(lfn, cluster+"-") {
			continue
		}
		for _, pfn := range r.Lookup(lfn) {
			if err := r.Unregister(lfn, pfn); err != nil {
				t.Errorf("purge %s @ %s: %v", lfn, pfn.Site, err)
			}
		}
	}
}

// soakFaultPlan is a deterministic occurrence-window fault schedule (first
// transient OpExec failures of a workflow), safe across checkpoint legs.
func soakFaultPlan(cluster string) *faults.Injector {
	seed := int64(1700)
	for _, c := range cluster {
		seed = seed*31 + int64(c)
	}
	return faults.New(seed,
		faults.Rule{Name: condor.OpExec, Kind: faults.KindTransient, From: 1, Until: 2})
}

// TestSoakServiceCampaign is the end-to-end slice of the soak: three
// tenants loop full compute workflows over a two-slot preemption-enabled
// fabric with transient faults injected; the high-priority tenant submits
// only while the fleet is saturated, so its admissions checkpoint-preempt
// a running victim. Every round of every tenant must produce output bytes
// identical to a solo fault-free never-preempted run, and the journals on
// disk must carry only their own workflow's scope — zero bleed.
func TestSoakServiceCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign skipped in -short mode")
	}
	const n = 3
	rounds := soakServiceRounds(soakCount(t, 600))
	tenants := []string{"alice", "bob", "carol"}
	prios := []int{soakBatch, soakBatch, soakUrgent}

	// Solo baselines: each cluster alone, fault-free, on a private testbed.
	solo := make([][]byte, n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		tb, err := core.NewTestbed(core.Config{
			ClusterSpecs: chaosSpecs(n), Seed: 7, Resilience: true, MirrorSite: "mirror",
		})
		if err != nil {
			t.Fatal(err)
		}
		names[i] = tb.Clusters[i].Name
		cat, err := tb.Portal.BuildCatalog(names[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := tb.Compute.Compute(cat, names[i]); err != nil {
			t.Fatalf("solo %s: %v", names[i], err)
		}
		if solo[i], err = tb.FTP.Store("isi").Get(names[i] + ".vot"); err != nil {
			t.Fatal(err)
		}
	}

	// The shared soak testbed: two workflow slots, preemption on, journaled
	// (journaling is what makes a lease preemptible), faulted.
	f, err := fabric.New(fabric.Config{
		Pools: []condor.Pool{
			{Name: "usc", Slots: 8}, {Name: "wisc", Slots: 16}, {Name: "fnal", Slots: 8},
		},
		MaxRunningWorkflows: 2,
		Preemption:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tb, err := core.NewTestbed(core.Config{
		ClusterSpecs: chaosSpecs(n), Seed: 7, Resilience: true, MirrorSite: "mirror",
		Fabric: f, JournalDir: dir,
		FaultsFor: func(tenant, cluster string) *faults.Injector {
			return soakFaultPlan(cluster)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		cat, err := tb.Portal.BuildCatalog(names[i])
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if prios[i] == soakUrgent {
					// Submit only into a saturated fleet, so the admission
					// exercises the preemption path (the wait is bounded:
					// when the batch tenants have drained, give up and run).
					deadline := time.Now().Add(2 * time.Second)
					for time.Now().Before(deadline) && f.Snapshot().Running < 2 {
						time.Sleep(200 * time.Microsecond)
					}
				}
				_, _, err := tb.Compute.ComputeFor(context.Background(), cat, names[i],
					webservice.RequestOptions{Tenant: tenants[i], Priority: prios[i]}, nil)
				if err != nil {
					errs[i] = err
					return
				}
				got, err := tb.FTP.Store("isi").Get(names[i] + ".vot")
				if err != nil {
					errs[i] = err
					return
				}
				if !bytes.Equal(got, solo[i]) {
					t.Errorf("%s (%s) round %d: output differs from solo fault-free never-preempted run",
						names[i], tenants[i], r)
					return
				}
				// Clear the round's data products so the next round runs the
				// whole pipeline again rather than reusing the RLS output.
				if r < rounds-1 {
					purgeProducts(t, tb.RLS, names[i])
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %s: %v", tenants[i], err)
		}
	}

	fleet := tb.Compute.Fleet()
	if fleet.Completed != n*rounds || fleet.Failed != 0 {
		t.Errorf("fleet completed=%d failed=%d, want %d/0", fleet.Completed, fleet.Failed, n*rounds)
	}
	if fleet.Preempted == 0 || fleet.Requeued == 0 {
		t.Errorf("end-to-end soak saw no preemption: %+v", fleet)
	}

	// Zero journal bleed: every journal on disk carries only the scope of
	// the workflow its filename names.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	journals := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".journal") {
			continue
		}
		journals++
		base := strings.TrimSuffix(e.Name(), ".journal")
		tenant, cluster, ok := strings.Cut(base, "__")
		if !ok {
			t.Errorf("journal %s is not tenant-namespaced", e.Name())
			continue
		}
		recs, _, err := journal.Replay(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("replay %s: %v", e.Name(), err)
		}
		want := tenant + "/" + cluster
		for _, rec := range recs {
			if rec.Scope != "" && rec.Scope != want {
				t.Errorf("journal %s carries foreign scope %q (want %q): bleed",
					e.Name(), rec.Scope, want)
				break
			}
		}
		if _, ended := journal.Ended(recs); !ended {
			t.Errorf("journal %s of a completed workflow has no end record", e.Name())
		}
	}
	if journals != n {
		t.Errorf("found %d journals, want %d (one per tenant/cluster)", journals, n)
	}
	t.Logf("end-to-end soak: %d tenants x %d rounds, %d preemptions, %d requeues, outputs byte-identical",
		n, rounds, fleet.Preempted, fleet.Requeued)
}

// pr8Class is one priority class's queue-wait distribution in one mode.
type pr8Class struct {
	Priority  int     `json:"priority"`
	Name      string  `json:"name"`
	Workflows int     `json:"workflows"`
	WaitP50Ms float64 `json:"queue_wait_p50_ms"`
	WaitP99Ms float64 `json:"queue_wait_p99_ms"`
	DistP99   int64   `json:"grant_distance_p99"`
}

// pr8Mode is the fleet under one scheduler mode.
type pr8Mode struct {
	Preemption bool       `json:"preemption"`
	Preempted  int        `json:"preempted"`
	Requeued   int        `json:"requeued"`
	Classes    []pr8Class `json:"classes"`
}

type benchPR8 struct {
	Note       string    `json:"note"`
	Workflows  int       `json:"workflows"`
	FleetSlots int       `json:"fleet_workflow_slots"`
	Modes      []pr8Mode `json:"modes"`
}

// TestEmitBenchPR8 records the preemption campaign's queue-wait
// distributions per priority class, with and without preemption, to
// BENCH_pr8.json. Opt-in via EMIT_BENCH=1.
func TestEmitBenchPR8(t *testing.T) {
	if os.Getenv("EMIT_BENCH") == "" {
		t.Skip("benchmark emission is opt-in: set EMIT_BENCH=1 to rewrite BENCH_pr8.json")
	}
	if testing.Short() {
		t.Skip("benchmark emission skipped in -short mode")
	}
	n := soakCount(t, 600)
	out := benchPR8{
		Note: "soak fleet queue-wait per priority class, with and without " +
			"preemption. grant_distance is the clock-free congestion metric " +
			"(grants between admission and own grant); wall-clock waits are " +
			"measured on the host and vary with load.",
		Workflows:  n,
		FleetSlots: 8,
	}
	classes := []struct {
		prio int
		name string
	}{
		{soakBatch, "batch"}, {soakInteractive, "interactive"}, {soakUrgent, "urgent"},
	}
	for _, preemption := range []bool{false, true} {
		snap, samples := runSoakFleet(t, n, preemption)
		mode := pr8Mode{Preemption: preemption, Preempted: snap.Preempted, Requeued: snap.Requeued}
		for _, c := range classes {
			count := 0
			for _, s := range samples {
				if s.priority == c.prio {
					count++
				}
			}
			mode.Classes = append(mode.Classes, pr8Class{
				Priority:  c.prio,
				Name:      c.name,
				Workflows: count,
				WaitP50Ms: float64(waitPercentile(samples, c.prio, 0.50)) / float64(time.Millisecond),
				WaitP99Ms: float64(waitPercentile(samples, c.prio, 0.99)) / float64(time.Millisecond),
				DistP99:   distPercentile(samples, c.prio, 0.99),
			})
		}
		out.Modes = append(out.Modes, mode)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pr8.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_pr8.json: %s", data)
}
