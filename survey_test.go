// The survey-scale smoke: a 1000-galaxy request through the full testbed in
// wave mode must produce output bytes identical to the monolithic path while
// keeping the scheduler's live graph bounded by the wave size — the two
// invariants of the bounded-memory pipeline, checked race-enabled by
// `make survey`.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/skysim"
	"repro/internal/wcs"
	"repro/internal/webservice"
)

func surveySpec(n int) []skysim.Spec {
	return []skysim.Spec{{
		Name: "SURVEY", Center: wcs.New(150, 2), Redshift: 0.04,
		NumGalaxies: n, Seed: 77,
	}}
}

// surveyRun computes the SURVEY cluster end to end and returns the raw
// output VOTable bytes plus the run stats.
func surveyRun(t *testing.T, cfg core.Config) ([]byte, webservice.RunStats) {
	t.Helper()
	tb, err := core.NewTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := tb.Portal.BuildCatalog("SURVEY")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := tb.Compute.Compute(cat, "SURVEY")
	if err != nil {
		t.Fatal(err)
	}
	data, err := tb.FTP.Store("isi").Get("SURVEY.vot")
	if err != nil {
		t.Fatal(err)
	}
	return data, stats
}

func TestSurveyWaveByteIdentity1k(t *testing.T) {
	if testing.Short() {
		t.Skip("survey smoke skipped in -short mode")
	}
	const galaxies, waveSize = 1000, 100

	want, classic := surveyRun(t, core.Config{
		ClusterSpecs: surveySpec(galaxies), Seed: 5, Workers: 4,
	})
	got, waved := surveyRun(t, core.Config{
		ClusterSpecs: surveySpec(galaxies), Seed: 5, Workers: 4,
		WaveSize: waveSize, PageSize: 200,
	})
	if string(got) != string(want) {
		t.Fatal("wave-mode survey output differs from the monolithic path")
	}

	// The live graph never exceeds a constant multiple of the wave size
	// (compute + stage-in + stage-out + register per leaf job), independent
	// of the request: the monolithic plan holds every node at once.
	if waved.Waves != galaxies/waveSize+1 {
		t.Errorf("waves = %d, want %d", waved.Waves, galaxies/waveSize+1)
	}
	if bound := 4 * waveSize; waved.MaxWaveNodes == 0 || waved.MaxWaveNodes > bound {
		t.Errorf("max wave nodes = %d, want (0, %d]", waved.MaxWaveNodes, bound)
	}
	if classic.ComputeJobs != waved.ComputeJobs {
		t.Errorf("compute jobs diverge: classic %d, waves %d", classic.ComputeJobs, waved.ComputeJobs)
	}

	// Wave-cache eviction: once a wave's outputs are registered in the RLS,
	// its staged cutouts are dropped from the GridFTP cache, so the peak
	// number of staged images is bounded by the wave size — not the survey —
	// and every leaf image is eventually evicted. The monolithic run keeps
	// everything staged (no waves, nothing evicted).
	if waved.ImagesEvicted != galaxies {
		t.Errorf("images evicted = %d, want %d (every staged cutout)", waved.ImagesEvicted, galaxies)
	}
	if waved.PeakStagedImages == 0 || waved.PeakStagedImages > waveSize {
		t.Errorf("peak staged images = %d, want (0, %d]", waved.PeakStagedImages, waveSize)
	}
	if classic.ImagesEvicted != 0 {
		t.Errorf("monolithic run evicted %d images, want 0", classic.ImagesEvicted)
	}
	t.Logf("1k survey: waves=%d maxWaveNodes=%d peakStaged=%d evicted=%d (classic plan holds all %d jobs at once)",
		waved.Waves, waved.MaxWaveNodes, waved.PeakStagedImages, waved.ImagesEvicted, classic.ComputeJobs)
}
